// Persistence subsystem tests: WAL + data-log + checkpoint round trips,
// torn-tail truncation, segment GC, class-ordered restart restore (read
// off the EventLog timeline), and null-backend parity with the in-memory
// configuration.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/file_util.h"
#include "core/data_plane.h"
#include "osd/control_protocol.h"
#include "osd/osd_target.h"
#include "persist/persistence.h"
#include "persist/restore.h"
#include "sim/cache_simulator.h"
#include "trace/event_log.h"
#include "workload/medisyn.h"

namespace reo {
namespace {

namespace fs = std::filesystem;

ObjectId Oid(uint64_t n) { return ObjectId{kFirstUserId, 0x20000 + n}; }

std::vector<uint8_t> Payload(uint64_t n, size_t bytes) {
  std::vector<uint8_t> data(bytes);
  for (size_t i = 0; i < bytes; ++i) {
    data[i] = static_cast<uint8_t>((n * 131 + i * 7) & 0xFF);
  }
  return data;
}

/// Fresh scratch directory per test (removed up front so reruns are clean).
std::string ScratchDir(const std::string& name) {
  fs::path dir = fs::temp_directory_path() / ("reo_persist_" + name);
  fs::remove_all(dir);
  return dir.string();
}

std::unique_ptr<PersistenceManager> MustOpen(const PersistenceConfig& cfg) {
  auto opened = PersistenceManager::Open(cfg);
  EXPECT_TRUE(opened.ok()) << opened.status().to_string();
  return opened.ok() ? std::move(*opened) : nullptr;
}

/// Appends raw bytes to a file (for torn-tail / corruption injection).
void AppendBytes(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

void FlipByte(const std::string& path, uint64_t offset) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0xFF);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&c, 1);
}

std::string WalPath(const std::string& dir, uint32_t seq) {
  return WalJournal::FilePath(dir, seq);
}

// --- Journal group-commit batching ------------------------------------------

TEST(JournalTest, BatchOfAppendsIsOneContiguousWrite) {
  std::string dir = ScratchDir("batch");
  fs::create_directories(dir);
  WalJournal j;
  ASSERT_TRUE(j.Open(dir, 1).ok());
  WalRecord rec;
  rec.type = WalRecordType::kEvict;
  constexpr int kRecords = 100;
  for (int i = 0; i < kRecords; ++i) {
    rec.id = Oid(static_cast<uint64_t>(i));
    ASSERT_TRUE(j.Append(EncodeWalBody(rec)).ok());
  }
  // Nothing reaches the file until the group commit...
  EXPECT_EQ(fs::file_size(WalPath(dir, 1)), 0u);
  ASSERT_TRUE(j.Sync().ok());
  // ...which flushes the whole batch with one write and one fsync.
  EXPECT_EQ(j.stats().records, static_cast<uint64_t>(kRecords));
  EXPECT_EQ(j.stats().batch_writes, 1u);
  EXPECT_EQ(j.stats().fsyncs, 1u);
  EXPECT_EQ(fs::file_size(WalPath(dir, 1)), j.stats().bytes);
  // Every record in the batch replays intact and in order.
  uint64_t seen = 0;
  Status st = j.ReplayFile(dir, 1, [&](const WalRecord& r) {
    EXPECT_EQ(r.id, Oid(seen));
    ++seen;
    return Status::Ok();
  });
  ASSERT_TRUE(st.ok()) << st.to_string();
  EXPECT_EQ(seen, static_cast<uint64_t>(kRecords));
}

// --- Round trip ------------------------------------------------------------

TEST(PersistTest, CommitAndRecoverRoundTrip) {
  PersistenceConfig cfg;
  cfg.data_dir = ScratchDir("roundtrip");
  {
    auto p = MustOpen(cfg);
    ASSERT_NE(p, nullptr);
    for (uint8_t cls = 0; cls < 4; ++cls) {
      ASSERT_TRUE(
          p->CommitWrite(Oid(cls), cls, 512, Payload(cls, 512), 0).ok());
    }
    ASSERT_TRUE(p->NoteHotness(Oid(2), 7.5).ok());
    ASSERT_TRUE(p->NoteClassifierState(3.25).ok());
    // p's destructor syncs; the bytes are in the page cache regardless.
  }
  auto p = MustOpen(cfg);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->live_objects(), 4u);
  EXPECT_EQ(p->replay_stats().journal_records, 6u);  // 4 puts + 2 notes
  EXPECT_DOUBLE_EQ(p->recovered_h_hot(), 3.25);
  for (uint8_t cls = 0; cls < 4; ++cls) {
    const PersistedObject* obj = p->Find(Oid(cls));
    ASSERT_NE(obj, nullptr) << "class " << int(cls);
    EXPECT_EQ(obj->class_id, cls);
    EXPECT_EQ(obj->dirty, cls == 1);
    EXPECT_EQ(obj->logical_size, 512u);
    auto payload = p->ReadPayload(*obj);
    ASSERT_TRUE(payload.ok()) << payload.status().to_string();
    EXPECT_EQ(*payload, Payload(cls, 512));
    EXPECT_EQ(p->replay_stats().objects_per_class[cls], 1u);
  }
  EXPECT_DOUBLE_EQ(p->Find(Oid(2))->hotness, 7.5);
}

TEST(PersistTest, OverwriteKeepsLatestVersionOnly) {
  PersistenceConfig cfg;
  cfg.data_dir = ScratchDir("overwrite");
  {
    auto p = MustOpen(cfg);
    ASSERT_TRUE(p->CommitWrite(Oid(0), 3, 256, Payload(1, 256), 0).ok());
    ASSERT_TRUE(p->CommitWrite(Oid(0), 3, 300, Payload(2, 300), 0).ok());
  }
  auto p = MustOpen(cfg);
  EXPECT_EQ(p->live_objects(), 1u);
  const PersistedObject* obj = p->Find(Oid(0));
  ASSERT_NE(obj, nullptr);
  EXPECT_EQ(obj->logical_size, 300u);
  auto payload = p->ReadPayload(*obj);
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(*payload, Payload(2, 300));
}

// --- Checkpointing ---------------------------------------------------------

TEST(PersistTest, CheckpointCompactsJournal) {
  PersistenceConfig cfg;
  cfg.data_dir = ScratchDir("checkpoint");
  {
    auto p = MustOpen(cfg);
    for (uint64_t n = 0; n < 8; ++n) {
      ASSERT_TRUE(p->CommitWrite(Oid(n), 2, 128, Payload(n, 128), 0).ok());
    }
    ASSERT_TRUE(p->Checkpoint(0).ok());
    // Post-checkpoint tail: these are the only records replay should see.
    ASSERT_TRUE(p->CommitWrite(Oid(100), 1, 128, Payload(100, 128), 0).ok());
    ASSERT_TRUE(p->CommitEvict(Oid(0), 0).ok());
    // The checkpoint rotation must have unlinked the pre-checkpoint WAL.
    EXPECT_FALSE(fs::exists(WalPath(cfg.data_dir, 1)));
  }
  auto p = MustOpen(cfg);
  EXPECT_TRUE(p->replay_stats().checkpoint_loaded);
  EXPECT_EQ(p->replay_stats().checkpoint_objects, 8u);
  EXPECT_EQ(p->replay_stats().journal_records, 2u);
  EXPECT_EQ(p->live_objects(), 8u);  // 8 checkpointed - 1 evicted + 1 new
  EXPECT_EQ(p->Find(Oid(0)), nullptr);
  ASSERT_NE(p->Find(Oid(100)), nullptr);
  EXPECT_TRUE(p->Find(Oid(100))->dirty);
}

TEST(PersistTest, ResetAllDropsEverything) {
  PersistenceConfig cfg;
  cfg.data_dir = ScratchDir("reset");
  {
    auto p = MustOpen(cfg);
    ASSERT_TRUE(p->CommitWrite(Oid(0), 1, 256, Payload(0, 256), 0).ok());
    ASSERT_TRUE(p->Checkpoint(0).ok());
    p->ResetAll();
    EXPECT_EQ(p->live_objects(), 0u);
  }
  auto p = MustOpen(cfg);
  EXPECT_EQ(p->live_objects(), 0u);
  EXPECT_FALSE(p->replay_stats().checkpoint_loaded);
}

// --- Torn tails and corruption --------------------------------------------

TEST(PersistTest, TornJournalTailIsTruncatedNotFatal) {
  PersistenceConfig cfg;
  cfg.data_dir = ScratchDir("torn");
  {
    auto p = MustOpen(cfg);
    for (uint64_t n = 0; n < 4; ++n) {
      ASSERT_TRUE(p->CommitWrite(Oid(n), 1, 128, Payload(n, 128), 0).ok());
    }
  }
  // A crash mid-append leaves garbage past the last full record.
  const std::string wal = WalPath(cfg.data_dir, 1);
  uint64_t intact_size = fs::file_size(wal);
  AppendBytes(wal, std::vector<uint8_t>(37, 0xAB));

  auto p = MustOpen(cfg);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->live_objects(), 4u);
  EXPECT_GE(p->replay_stats().torn_tail_truncations, 1u);
  EXPECT_EQ(fs::file_size(wal), intact_size);  // garbage cut off
}

TEST(PersistTest, MidJournalCorruptionFailStops) {
  PersistenceConfig cfg;
  cfg.data_dir = ScratchDir("midcorrupt");
  {
    auto p = MustOpen(cfg);
    for (uint64_t n = 0; n < 6; ++n) {
      ASSERT_TRUE(p->CommitWrite(Oid(n), 1, 128, Payload(n, 128), 0).ok());
    }
  }
  // Damage the FIRST record's body while intact frames follow: that is not
  // a torn tail, and guessing would silently drop committed history.
  FlipByte(WalPath(cfg.data_dir, 1), 16);
  auto opened = PersistenceManager::Open(cfg);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), ErrorCode::kCorrupted);
}

TEST(PersistTest, TornDataSegmentTailDropsOnlyUnverifiableObjects) {
  PersistenceConfig cfg;
  cfg.data_dir = ScratchDir("torndata");
  {
    auto p = MustOpen(cfg);
    for (uint64_t n = 0; n < 3; ++n) {
      ASSERT_TRUE(p->CommitWrite(Oid(n), 2, 256, Payload(n, 256), 0).ok());
    }
  }
  // Cut the last object's record short: its journal entry now points past
  // the end of the segment, so recovery must drop exactly that object.
  const std::string seg = cfg.data_dir + "/seg-000001.dat";
  fs::resize_file(seg, fs::file_size(seg) - 100);

  auto p = MustOpen(cfg);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->live_objects(), 2u);
  EXPECT_EQ(p->replay_stats().invalid_locations, 1u);
  EXPECT_EQ(p->Find(Oid(2)), nullptr);
  for (uint64_t n = 0; n < 2; ++n) {
    auto payload = p->ReadPayload(*p->Find(Oid(n)));
    ASSERT_TRUE(payload.ok());
    EXPECT_EQ(*payload, Payload(n, 256));
  }
}

// --- Segment GC ------------------------------------------------------------

TEST(PersistTest, EvictionReclaimsFullyDeadSegments) {
  PersistenceConfig cfg;
  cfg.data_dir = ScratchDir("gc");
  cfg.segment_bytes = 1024;  // every ~600-byte record seals its own segment
  auto p = MustOpen(cfg);
  for (uint64_t n = 0; n < 3; ++n) {
    ASSERT_TRUE(p->CommitWrite(Oid(n), 2, 600, Payload(n, 600), 0).ok());
  }
  ASSERT_TRUE(fs::exists(cfg.data_dir + "/seg-000001.dat"));
  ASSERT_TRUE(fs::exists(cfg.data_dir + "/seg-000002.dat"));

  // Evicting the only record of a sealed segment unlinks the whole file.
  ASSERT_TRUE(p->CommitEvict(Oid(0), 0).ok());
  EXPECT_FALSE(fs::exists(cfg.data_dir + "/seg-000001.dat"));
  ASSERT_TRUE(p->CommitEvict(Oid(1), 0).ok());
  EXPECT_FALSE(fs::exists(cfg.data_dir + "/seg-000002.dat"));
  EXPECT_EQ(p->live_objects(), 1u);

  // Reopen: the evictions are journaled, nothing is resurrected.
  p.reset();
  p = MustOpen(cfg);
  EXPECT_EQ(p->live_objects(), 1u);
  EXPECT_EQ(p->Find(Oid(0)), nullptr);
  EXPECT_EQ(p->Find(Oid(1)), nullptr);
  EXPECT_NE(p->Find(Oid(2)), nullptr);
}

// --- Restore order ---------------------------------------------------------

TEST(PersistTest, RestoreOrderIsClassThenHotnessThenLsn) {
  PersistenceConfig cfg;
  cfg.data_dir = ScratchDir("order");
  auto p = MustOpen(cfg);
  // Interleave commits so insertion order is NOT the restore order.
  ASSERT_TRUE(p->CommitWrite(Oid(10), 3, 64, Payload(10, 64), 0).ok());
  ASSERT_TRUE(p->CommitWrite(Oid(11), 2, 64, Payload(11, 64), 0).ok());
  ASSERT_TRUE(p->CommitWrite(Oid(12), 0, 64, Payload(12, 64), 0).ok());
  ASSERT_TRUE(p->CommitWrite(Oid(13), 2, 64, Payload(13, 64), 0).ok());
  ASSERT_TRUE(p->CommitWrite(Oid(14), 1, 64, Payload(14, 64), 0).ok());
  ASSERT_TRUE(p->NoteHotness(Oid(13), 9.0).ok());  // hotter than Oid(11)
  ASSERT_TRUE(p->NoteHotness(Oid(11), 2.0).ok());

  std::vector<PersistedObject> order = p->RestoreOrder();
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order[0].id, Oid(12));  // class 0 first
  EXPECT_EQ(order[1].id, Oid(14));  // then dirty class 1
  EXPECT_EQ(order[2].id, Oid(13));  // class 2, hotter first
  EXPECT_EQ(order[3].id, Oid(11));
  EXPECT_EQ(order[4].id, Oid(10));  // cold class 3 last
}

// --- Full-stack restart restore -------------------------------------------

struct Stack {
  explicit Stack(uint64_t chunk = 4096, uint64_t capacity = 8ull << 20) {
    FlashDeviceConfig dev;
    dev.capacity_bytes = capacity;
    array = std::make_unique<FlashArray>(5, dev);
    stripes = std::make_unique<StripeManager>(
        *array, StripeManagerConfig{.chunk_logical_bytes = chunk,
                                    .scale_shift = 0,
                                    .capacity_limit_bytes = capacity});
    plane = std::make_unique<ReoDataPlane>(
        *stripes, RedundancyPolicy({.mode = ProtectionMode::kReo,
                                    .reo_reserve_fraction = 0.5}));
    target = std::make_unique<OsdTarget>(*plane);
  }

  OsdResponse Format(uint64_t capacity) {
    OsdCommand cmd;
    cmd.op = OsdOp::kFormat;
    cmd.capacity_bytes = capacity;
    return target->Execute(cmd);
  }

  OsdResponse CreateAndClassify(ObjectId id, uint64_t bytes, uint8_t cls) {
    OsdCommand create;
    create.op = OsdOp::kCreate;
    create.id = id;
    create.logical_size = bytes;
    OsdResponse r = target->Execute(create);
    if (!r.ok()) return r;
    OsdCommand ctl;
    ctl.op = OsdOp::kWrite;
    ctl.id = kControlObject;
    ctl.data =
        EncodeControlMessage(SetIdCommand{.target = id, .class_id = cls});
    ctl.logical_size = ctl.data.size();
    return target->Execute(ctl);
  }

  OsdResponse Write(ObjectId id, const std::vector<uint8_t>& payload) {
    OsdCommand cmd;
    cmd.op = OsdOp::kWrite;
    cmd.id = id;
    cmd.logical_size = payload.size();
    cmd.data = payload;
    return target->Execute(cmd);
  }

  OsdResponse Read(ObjectId id) {
    OsdCommand cmd;
    cmd.op = OsdOp::kRead;
    cmd.id = id;
    return target->Execute(cmd);
  }

  std::unique_ptr<FlashArray> array;
  std::unique_ptr<StripeManager> stripes;
  std::unique_ptr<ReoDataPlane> plane;
  std::unique_ptr<OsdTarget> target;
};

TEST(PersistRestoreTest, ClassOrderedRestoreTimelineAndPayloads) {
  PersistenceConfig cfg;
  cfg.data_dir = ScratchDir("restore_timeline");
  constexpr uint64_t kCapacity = 8ull << 20;
  constexpr size_t kBytes = 4096;

  // Phase 1: serve writes of every class through the real stack.
  {
    Stack stack;
    auto p = MustOpen(cfg);
    stack.plane->AttachPersistence(p.get());
    ASSERT_TRUE(stack.Format(kCapacity).ok());
    // Two objects per class; give the class-2 pair distinct hotness.
    uint64_t n = 0;
    for (uint8_t cls = 0; cls < 4; ++cls) {
      for (int k = 0; k < 2; ++k, ++n) {
        ASSERT_TRUE(stack.CreateAndClassify(Oid(n), kBytes, cls).ok());
        ASSERT_TRUE(stack.Write(Oid(n), Payload(n, kBytes)).ok());
      }
    }
    ASSERT_TRUE(p->NoteHotness(Oid(5), 10.0).ok());  // second class-2 object
    ASSERT_TRUE(p->NoteHotness(Oid(4), 1.0).ok());
    EXPECT_EQ(p->live_objects(), 8u);
  }

  // Phase 2: "restart" — fresh stack, recover, replay in class order.
  Stack stack;
  auto p = MustOpen(cfg);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->live_objects(), 8u);
  EventLog events;
  RestoreReport report =
      RestoreToTarget(*p, *stack.target, kCapacity, /*now=*/0, &events);
  EXPECT_EQ(report.total_restored(), 8u);
  for (int cls = 0; cls < 4; ++cls) {
    EXPECT_EQ(report.restored_per_class[cls], 2u) << "class " << cls;
  }
  EXPECT_EQ(report.dirty_lost, 0u);
  EXPECT_EQ(report.payload_verify_failures, 0u);

  // The EventLog timeline must show classes restored in 0->1->2->3 order,
  // and the hotter class-2 object before the colder one.
  std::vector<int> class_seq;
  std::vector<std::string> restored_ids;
  bool saw_replay = false, saw_restart = false;
  for (const LoggedEvent& ev : events.events()) {
    if (ev.category == "persist.replay") saw_replay = true;
    if (ev.category == "recovery.restart") saw_restart = true;
    if (ev.category == "persist.restore" &&
        ev.severity == EventSeverity::kDebug) {
      class_seq.push_back(std::stoi(std::string(ev.Field("class"))));
      restored_ids.push_back(std::string(ev.Field("id")));
    }
  }
  EXPECT_TRUE(saw_replay);
  EXPECT_TRUE(saw_restart);
  ASSERT_EQ(class_seq.size(), 8u);
  EXPECT_TRUE(std::is_sorted(class_seq.begin(), class_seq.end()))
      << "restore timeline not in class order";
  // Objects 4 and 5 are the class-2 pair; 5 is hotter and must come first.
  EXPECT_EQ(restored_ids[4], Oid(5).ToString());
  EXPECT_EQ(restored_ids[5], Oid(4).ToString());

  // Every restored object must read back its exact pre-crash payload.
  for (uint64_t n = 0; n < 8; ++n) {
    OsdResponse r = stack.Read(Oid(n));
    ASSERT_TRUE(r.ok()) << "object " << n;
    ASSERT_GE(r.data.size(), kBytes);
    const std::vector<uint8_t> want = Payload(n, kBytes);
    EXPECT_TRUE(std::equal(want.begin(), want.end(), r.data.begin()))
        << "object " << n;
  }
}

TEST(PersistRestoreTest, CorruptPayloadIsDroppedNotResurrected) {
  PersistenceConfig cfg;
  cfg.data_dir = ScratchDir("restore_drop");
  constexpr uint64_t kCapacity = 8ull << 20;
  {
    Stack stack;
    auto p = MustOpen(cfg);
    stack.plane->AttachPersistence(p.get());
    ASSERT_TRUE(stack.Format(kCapacity).ok());
    for (uint64_t n = 0; n < 3; ++n) {
      ASSERT_TRUE(stack.CreateAndClassify(Oid(n), 4096, 2).ok());
      ASSERT_TRUE(stack.Write(Oid(n), Payload(n, 4096)).ok());
    }
  }
  // Flip one payload byte of the first record (header is 56 bytes).
  FlipByte(cfg.data_dir + "/seg-000001.dat", 100);

  Stack stack;
  auto p = MustOpen(cfg);
  EventLog events;
  RestoreReport report =
      RestoreToTarget(*p, *stack.target, kCapacity, 0, &events);
  EXPECT_EQ(report.total_restored(), 2u);
  EXPECT_EQ(report.payload_verify_failures, 1u);
  // The drop was journaled as an eviction: a second restart must not see
  // the corrupt object again.
  p.reset();
  p = MustOpen(cfg);
  EXPECT_EQ(p->live_objects(), 2u);
}

// --- FORMAT through the target --------------------------------------------

TEST(PersistRestoreTest, FormatThroughTargetResetsDurableState) {
  PersistenceConfig cfg;
  cfg.data_dir = ScratchDir("format");
  Stack stack;
  auto p = MustOpen(cfg);
  stack.plane->AttachPersistence(p.get());
  ASSERT_TRUE(stack.Format(4ull << 20).ok());
  ASSERT_TRUE(stack.CreateAndClassify(Oid(0), 4096, 1).ok());
  ASSERT_TRUE(stack.Write(Oid(0), Payload(0, 4096)).ok());
  EXPECT_EQ(p->live_objects(), 1u);
  ASSERT_TRUE(stack.Format(4ull << 20).ok());
  EXPECT_EQ(p->live_objects(), 0u);
}

// --- Null-backend parity ---------------------------------------------------

TEST(PersistParityTest, DisabledPersistenceMatchesInMemoryRun) {
  MediSynConfig wl;
  wl.num_objects = 120;
  wl.mean_object_bytes = 48 * 1024;
  wl.num_requests = 1200;
  wl.write_ratio = 0.3;
  Trace trace = GenerateMediSyn(wl);

  SimulationConfig base;
  base.name = "parity";
  base.cache_fraction = 0.2;
  base.chunk_logical_bytes = 16 * 1024;
  base.scale_shift = 0;

  SimulationConfig with_persist = base;
  with_persist.persistence.data_dir = ScratchDir("parity");
  with_persist.persistence.sync_critical = false;  // speed; batching only

  CacheSimulator plain(trace, base);
  RunReport a = plain.Run();
  CacheSimulator durable(trace, with_persist);
  RunReport b = durable.Run();

  // Durability must be invisible to cache behavior: identical hit/miss
  // stream, identical virtual-time latencies, identical space accounting.
  EXPECT_EQ(a.total.requests, b.total.requests);
  EXPECT_EQ(a.total.hits, b.total.hits);
  EXPECT_EQ(a.total.bytes, b.total.bytes);
  EXPECT_EQ(a.cache.hits, b.cache.hits);
  EXPECT_EQ(a.cache.misses, b.cache.misses);
  EXPECT_EQ(a.cache.evictions, b.cache.evictions);
  EXPECT_EQ(a.space.user_bytes, b.space.user_bytes);
  EXPECT_EQ(a.space.redundancy_bytes, b.space.redundancy_bytes);
  EXPECT_EQ(a.total.latency_us.count(), b.total.latency_us.count());
  EXPECT_DOUBLE_EQ(a.total.AvgLatencyMs(), b.total.AvgLatencyMs());

  // And the durable run really did persist the cache's current contents.
  EXPECT_GT(durable.persistence()->live_objects(), 0u);
}

}  // namespace
}  // namespace reo
