// Erasure-coding tests: GF(256) field laws, matrix algebra, Reed-Solomon
// encode/decode properties across stripe geometries, and parity-update
// strategies (direct vs delta).
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "ec/gf256.h"
#include "ec/matrix.h"
#include "ec/parity_update.h"
#include "ec/rs_code.h"

namespace reo {
namespace {

// --- GF(256) field laws ------------------------------------------------------

TEST(Gf256Test, AddIsXor) {
  EXPECT_EQ(gf256::Add(0x55, 0xAA), 0xFF);
  EXPECT_EQ(gf256::Add(0x13, 0x13), 0x00);
}

TEST(Gf256Test, MulIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    auto x = static_cast<uint8_t>(a);
    EXPECT_EQ(gf256::Mul(x, 1), x);
    EXPECT_EQ(gf256::Mul(1, x), x);
    EXPECT_EQ(gf256::Mul(x, 0), 0);
  }
}

TEST(Gf256Test, MulCommutative) {
  Pcg32 rng(1);
  for (int i = 0; i < 2000; ++i) {
    auto a = static_cast<uint8_t>(rng.Next());
    auto b = static_cast<uint8_t>(rng.Next());
    EXPECT_EQ(gf256::Mul(a, b), gf256::Mul(b, a));
  }
}

TEST(Gf256Test, MulAssociative) {
  Pcg32 rng(2);
  for (int i = 0; i < 2000; ++i) {
    auto a = static_cast<uint8_t>(rng.Next());
    auto b = static_cast<uint8_t>(rng.Next());
    auto c = static_cast<uint8_t>(rng.Next());
    EXPECT_EQ(gf256::Mul(gf256::Mul(a, b), c), gf256::Mul(a, gf256::Mul(b, c)));
  }
}

TEST(Gf256Test, DistributesOverAdd) {
  Pcg32 rng(3);
  for (int i = 0; i < 2000; ++i) {
    auto a = static_cast<uint8_t>(rng.Next());
    auto b = static_cast<uint8_t>(rng.Next());
    auto c = static_cast<uint8_t>(rng.Next());
    EXPECT_EQ(gf256::Mul(a, gf256::Add(b, c)),
              gf256::Add(gf256::Mul(a, b), gf256::Mul(a, c)));
  }
}

TEST(Gf256Test, InverseRoundTrip) {
  for (int a = 1; a < 256; ++a) {
    auto x = static_cast<uint8_t>(a);
    EXPECT_EQ(gf256::Mul(x, gf256::Inv(x)), 1) << "a=" << a;
    EXPECT_EQ(gf256::Div(x, x), 1);
  }
}

TEST(Gf256Test, DivIsMulByInverse) {
  Pcg32 rng(4);
  for (int i = 0; i < 1000; ++i) {
    auto a = static_cast<uint8_t>(rng.Next());
    auto b = static_cast<uint8_t>(rng.Next() | 1);  // non-zero
    if (b == 0) continue;
    EXPECT_EQ(gf256::Div(a, b), gf256::Mul(a, gf256::Inv(b)));
  }
}

TEST(Gf256Test, PowMatchesRepeatedMul) {
  for (int a = 1; a < 256; a += 17) {
    uint8_t acc = 1;
    for (uint32_t e = 0; e < 10; ++e) {
      EXPECT_EQ(gf256::Pow(static_cast<uint8_t>(a), e), acc);
      acc = gf256::Mul(acc, static_cast<uint8_t>(a));
    }
  }
  EXPECT_EQ(gf256::Pow(0, 0), 1);
  EXPECT_EQ(gf256::Pow(0, 5), 0);
}

TEST(Gf256Test, MulAccMatchesScalar) {
  Pcg32 rng(5);
  std::vector<uint8_t> dst(257), src(257), expect(257);
  for (size_t i = 0; i < dst.size(); ++i) {
    dst[i] = static_cast<uint8_t>(rng.Next());
    src[i] = static_cast<uint8_t>(rng.Next());
  }
  for (uint8_t c : {0, 1, 2, 37, 255}) {
    expect = dst;
    for (size_t i = 0; i < dst.size(); ++i) {
      expect[i] = gf256::Add(expect[i], gf256::Mul(c, src[i]));
    }
    auto out = dst;
    gf256::MulAcc(out, src, c);
    EXPECT_EQ(out, expect) << "c=" << int(c);
  }
}

TEST(Gf256Test, MulBufMatchesScalar) {
  Pcg32 rng(6);
  std::vector<uint8_t> src(100);
  for (auto& v : src) v = static_cast<uint8_t>(rng.Next());
  for (uint8_t c : {0, 1, 19, 200}) {
    std::vector<uint8_t> out(100), expect(100);
    for (size_t i = 0; i < src.size(); ++i) expect[i] = gf256::Mul(c, src[i]);
    gf256::MulBuf(out, src, c);
    EXPECT_EQ(out, expect);
  }
}

// Differential: the dispatched kernels (SSSE3 pshufb on capable CPUs) must be
// byte-identical to the scalar reference for every coefficient, across
// unaligned starts, odd lengths spanning the 16-byte vector width, and the
// sub-cutover sizes that stay scalar.
TEST(Gf256Test, DispatchedKernelsMatchScalarExhaustively) {
  Pcg32 rng(7);
  constexpr size_t kMax = 4096 + 19;
  std::vector<uint8_t> backing_src(kMax + 16), backing_dst(kMax + 16);
  for (auto& v : backing_src) v = static_cast<uint8_t>(rng.Next());
  for (auto& v : backing_dst) v = static_cast<uint8_t>(rng.Next());
  const size_t lens[] = {0, 1, 15, 16, 17, 31, 32, 33, 47, 63, 64, 100, 4096};
  const size_t offsets[] = {0, 1, 7, 13};
  for (int c = 0; c < 256; ++c) {
    for (size_t len : lens) {
      for (size_t off : offsets) {
        std::span<const uint8_t> src(backing_src.data() + off, len);
        std::vector<uint8_t> scalar_acc(backing_dst.begin() + off,
                                        backing_dst.begin() + off + len);
        std::vector<uint8_t> simd_acc = scalar_acc;
        gf256::MulAccScalar(scalar_acc, src, static_cast<uint8_t>(c));
        gf256::MulAcc(simd_acc, src, static_cast<uint8_t>(c));
        ASSERT_EQ(simd_acc, scalar_acc)
            << "MulAcc c=" << c << " len=" << len << " off=" << off;

        std::vector<uint8_t> scalar_buf(len, 0xAA), simd_buf(len, 0x55);
        gf256::MulBufScalar(scalar_buf, src, static_cast<uint8_t>(c));
        gf256::MulBuf(simd_buf, src, static_cast<uint8_t>(c));
        ASSERT_EQ(simd_buf, scalar_buf)
            << "MulBuf c=" << c << " len=" << len << " off=" << off;
      }
    }
  }
}

// --- Matrix -------------------------------------------------------------------

TEST(GfMatrixTest, IdentityMultiply) {
  GfMatrix id = GfMatrix::Identity(4);
  GfMatrix v = GfMatrix::Vandermonde(4, 4);
  EXPECT_EQ(id.Multiply(v), v);
  EXPECT_EQ(v.Multiply(id), v);
}

TEST(GfMatrixTest, InverseRoundTrip) {
  GfMatrix v = GfMatrix::Vandermonde(5, 5);
  auto inv = v.Inverse();
  ASSERT_TRUE(inv.ok());
  EXPECT_EQ(v.Multiply(*inv), GfMatrix::Identity(5));
  EXPECT_EQ(inv->Multiply(v), GfMatrix::Identity(5));
}

TEST(GfMatrixTest, SingularDetected) {
  GfMatrix m(2, 2);  // all zeros
  EXPECT_FALSE(m.Inverse().ok());
}

TEST(GfMatrixTest, SelectRows) {
  GfMatrix v = GfMatrix::Vandermonde(5, 3);
  GfMatrix sel = v.SelectRows({0, 4});
  EXPECT_EQ(sel.rows(), 2u);
  for (size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(sel.at(0, c), v.at(0, c));
    EXPECT_EQ(sel.at(1, c), v.at(4, c));
  }
}

TEST(GfMatrixTest, ReduceLeadingSquare) {
  GfMatrix v = GfMatrix::Vandermonde(6, 4);
  ASSERT_TRUE(v.ReduceLeadingSquareToIdentity().ok());
  for (size_t r = 0; r < 4; ++r) {
    for (size_t c = 0; c < 4; ++c) {
      EXPECT_EQ(v.at(r, c), r == c ? 1 : 0);
    }
  }
}

// --- Reed-Solomon property sweep ----------------------------------------------

struct RsGeometry {
  size_t m;
  size_t k;
  RsConstruction construction = RsConstruction::kVandermonde;
};

class RsCodeP : public ::testing::TestWithParam<RsGeometry> {
 protected:
  RsCode MakeCode() const {
    return RsCode(GetParam().m, GetParam().k, GetParam().construction);
  }
};

std::vector<std::vector<uint8_t>> RandomChunks(size_t n, size_t len, uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<std::vector<uint8_t>> chunks(n, std::vector<uint8_t>(len));
  for (auto& c : chunks) {
    for (auto& b : c) b = static_cast<uint8_t>(rng.Next());
  }
  return chunks;
}

/// Encodes, erases `erased` fragments, reconstructs, and verifies that every
/// erased fragment is restored bit-exactly.
void RoundTrip(const RsCode& code, const std::vector<size_t>& erased,
               size_t len, uint64_t seed) {
  size_t m = code.data_chunks(), k = code.parity_chunks();
  auto data = RandomChunks(m, len, seed);
  std::vector<std::vector<uint8_t>> parity(k, std::vector<uint8_t>(len));

  std::vector<std::span<const uint8_t>> dspans(data.begin(), data.end());
  std::vector<std::span<uint8_t>> pspans(parity.begin(), parity.end());
  code.Encode(dspans, pspans);

  auto fragment = [&](size_t f) -> const std::vector<uint8_t>& {
    return f < m ? data[f] : parity[f - m];
  };

  std::vector<std::pair<size_t, std::span<const uint8_t>>> present;
  for (size_t f = 0; f < m + k; ++f) {
    if (std::find(erased.begin(), erased.end(), f) == erased.end()) {
      present.emplace_back(f, fragment(f));
    }
  }
  std::vector<std::vector<uint8_t>> out(erased.size(), std::vector<uint8_t>(len));
  std::vector<std::span<uint8_t>> out_spans(out.begin(), out.end());

  ASSERT_TRUE(code.Reconstruct(present, erased, out_spans).ok());
  for (size_t i = 0; i < erased.size(); ++i) {
    EXPECT_EQ(out[i], fragment(erased[i])) << "fragment " << erased[i];
  }
}

TEST_P(RsCodeP, SurvivesEverySingleErasure) {
  auto [m, k, construction] = GetParam();
  if (k == 0) GTEST_SKIP() << "0-parity cannot recover";
  RsCode code = MakeCode();
  for (size_t f = 0; f < m + k; ++f) RoundTrip(code, {f}, 64, 77 + f);
}

TEST_P(RsCodeP, SurvivesEveryErasurePairWithinK) {
  auto [m, k, construction] = GetParam();
  if (k < 2) GTEST_SKIP();
  RsCode code = MakeCode();
  for (size_t a = 0; a < m + k; ++a) {
    for (size_t b = a + 1; b < m + k; ++b) {
      RoundTrip(code, {a, b}, 32, a * 131 + b);
    }
  }
}

TEST_P(RsCodeP, FailsBeyondK) {
  auto [m, k, construction] = GetParam();
  RsCode code = MakeCode();
  size_t len = 16;
  auto data = RandomChunks(m, len, 5);
  std::vector<std::vector<uint8_t>> parity(k, std::vector<uint8_t>(len));
  std::vector<std::span<const uint8_t>> dspans(data.begin(), data.end());
  std::vector<std::span<uint8_t>> pspans(parity.begin(), parity.end());
  code.Encode(dspans, pspans);

  // Keep only m-1 fragments: below the decode threshold.
  std::vector<std::pair<size_t, std::span<const uint8_t>>> present;
  for (size_t f = 0; f + 1 < m; ++f) present.emplace_back(f, data[f]);
  std::vector<size_t> missing{m - 1};
  std::vector<uint8_t> out(len);
  std::vector<std::span<uint8_t>> out_spans{std::span<uint8_t>(out)};
  EXPECT_EQ(code.Reconstruct(present, missing, out_spans).code(),
            ErrorCode::kUnrecoverable);
}

TEST_P(RsCodeP, ParityIsDeterministic) {
  auto [m, k, construction] = GetParam();
  if (k == 0) GTEST_SKIP();
  RsCode code = MakeCode();
  auto data = RandomChunks(m, 48, 9);
  std::vector<std::span<const uint8_t>> dspans(data.begin(), data.end());
  std::vector<std::vector<uint8_t>> p1(k, std::vector<uint8_t>(48));
  std::vector<std::vector<uint8_t>> p2(k, std::vector<uint8_t>(48));
  std::vector<std::span<uint8_t>> s1(p1.begin(), p1.end());
  std::vector<std::span<uint8_t>> s2(p2.begin(), p2.end());
  code.Encode(dspans, s1);
  code.Encode(dspans, s2);
  EXPECT_EQ(p1, p2);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, RsCodeP,
    ::testing::Values(
        RsGeometry{1, 1}, RsGeometry{1, 4}, RsGeometry{2, 1},
        RsGeometry{3, 2}, RsGeometry{4, 1}, RsGeometry{4, 2},
        RsGeometry{5, 0}, RsGeometry{5, 3}, RsGeometry{8, 4},
        RsGeometry{10, 2},
        RsGeometry{3, 2, RsConstruction::kCauchy},
        RsGeometry{4, 1, RsConstruction::kCauchy},
        RsGeometry{4, 2, RsConstruction::kCauchy},
        RsGeometry{8, 4, RsConstruction::kCauchy},
        RsGeometry{10, 2, RsConstruction::kCauchy}),
    [](const auto& info) {
      std::string name = "m" + std::to_string(info.param.m) + "k" +
                         std::to_string(info.param.k);
      if (info.param.construction == RsConstruction::kCauchy) name += "cauchy";
      return name;
    });

// --- Parity updating (paper §II.B) ---------------------------------------------

TEST(ParityUpdateTest, DeltaMatchesReencode) {
  RsCode code(4, 2);
  size_t len = 128;
  auto data = RandomChunks(4, len, 11);
  std::vector<std::vector<uint8_t>> parity(2, std::vector<uint8_t>(len));
  std::vector<std::span<const uint8_t>> dspans(data.begin(), data.end());
  std::vector<std::span<uint8_t>> pspans(parity.begin(), parity.end());
  code.Encode(dspans, pspans);

  // Update data chunk 2.
  auto old_chunk = data[2];
  Pcg32 rng(12);
  for (auto& b : data[2]) b = static_cast<uint8_t>(rng.Next());

  // Delta-update both parity chunks.
  for (size_t p = 0; p < 2; ++p) {
    ApplyDeltaUpdate(code, p, 2, old_chunk, data[2], parity[p]);
  }

  // Compare with a full re-encode.
  std::vector<std::vector<uint8_t>> fresh(2, std::vector<uint8_t>(len));
  std::vector<std::span<uint8_t>> fspans(fresh.begin(), fresh.end());
  std::vector<std::span<const uint8_t>> dspans2(data.begin(), data.end());
  code.Encode(dspans2, fspans);
  EXPECT_EQ(parity, fresh);
}

TEST(ParityUpdateTest, CostModel) {
  // m=4 live data, k=1: direct reads 3 siblings; delta reads 1 data + 1
  // parity = 2 -> delta wins.
  auto c = ComputeUpdateCost(4, 1);
  EXPECT_EQ(c.direct_reads, 3u);
  EXPECT_EQ(c.delta_reads, 2u);
  EXPECT_EQ(ChooseStrategy(4, 1), ParityUpdateStrategy::kDelta);

  // m=2, k=2: direct reads 1; delta reads 3 -> direct wins.
  EXPECT_EQ(ChooseStrategy(2, 2), ParityUpdateStrategy::kDirect);

  // Tie prefers delta: m=4, k=2 -> direct 3, delta 3.
  EXPECT_EQ(ChooseStrategy(4, 2), ParityUpdateStrategy::kDelta);
}

TEST(ParityUpdateTest, CoefficientMatchesGenerator) {
  RsCode code(3, 2);
  // Encoding a unit vector isolates one generator coefficient.
  size_t len = 4;
  for (size_t d = 0; d < 3; ++d) {
    std::vector<std::vector<uint8_t>> data(3, std::vector<uint8_t>(len, 0));
    data[d][0] = 1;
    std::vector<std::vector<uint8_t>> parity(2, std::vector<uint8_t>(len));
    std::vector<std::span<const uint8_t>> ds(data.begin(), data.end());
    std::vector<std::span<uint8_t>> ps(parity.begin(), parity.end());
    code.Encode(ds, ps);
    for (size_t p = 0; p < 2; ++p) {
      EXPECT_EQ(parity[p][0], code.Coefficient(p, d));
    }
  }
}

}  // namespace
}  // namespace reo
