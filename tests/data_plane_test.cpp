// ReoDataPlane tests: class -> level mapping per policy mode, the
// redundancy-reserve cap (sense 0x67 semantics), health reporting, and
// space queries.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "backend/backend_store.h"
#include "core/data_plane.h"

namespace reo {
namespace {

constexpr uint64_t kChunk = 1024;

ObjectId Oid(uint64_t n) { return ObjectId{kFirstUserId, 0x20000 + n}; }

struct PlaneFixture {
  explicit PlaneFixture(ProtectionMode mode, double reserve = 0.10,
                        uint64_t device_capacity = 256 * kChunk) {
    FlashDeviceConfig dev;
    dev.capacity_bytes = device_capacity;
    array = std::make_unique<FlashArray>(5, dev);
    stripes = std::make_unique<StripeManager>(
        *array,
        StripeManagerConfig{.chunk_logical_bytes = kChunk, .scale_shift = 0});
    plane = std::make_unique<ReoDataPlane>(
        *stripes,
        RedundancyPolicy({.mode = mode, .reo_reserve_fraction = reserve}));
  }

  Result<DataPlaneIo> Write(uint64_t n, uint64_t logical, uint8_t cls) {
    auto payload =
        BackendStore::SynthesizePayload(Oid(n), 0, stripes->PhysicalSize(logical));
    return plane->WriteObject(Oid(n), payload, logical, cls, 0);
  }

  std::unique_ptr<FlashArray> array;
  std::unique_ptr<StripeManager> stripes;
  std::unique_ptr<ReoDataPlane> plane;
};

TEST(ReoDataPlaneTest, ReoClassToLevelMapping) {
  PlaneFixture fx(ProtectionMode::kReo, 0.5);
  ASSERT_TRUE(fx.Write(0, 2 * kChunk, 0).ok());
  ASSERT_TRUE(fx.Write(1, 2 * kChunk, 1).ok());
  ASSERT_TRUE(fx.Write(2, 2 * kChunk, 2).ok());
  ASSERT_TRUE(fx.Write(3, 2 * kChunk, 3).ok());
  EXPECT_EQ(*fx.stripes->LevelOf(Oid(0)), RedundancyLevel::kReplicate);
  EXPECT_EQ(*fx.stripes->LevelOf(Oid(1)), RedundancyLevel::kReplicate);
  EXPECT_EQ(*fx.stripes->LevelOf(Oid(2)), RedundancyLevel::kParity2);
  EXPECT_EQ(*fx.stripes->LevelOf(Oid(3)), RedundancyLevel::kNone);
}

TEST(ReoDataPlaneTest, UniformModesIgnoreClass) {
  for (auto [mode, level] :
       std::vector<std::pair<ProtectionMode, RedundancyLevel>>{
           {ProtectionMode::kUniform1, RedundancyLevel::kParity1},
           {ProtectionMode::kFullReplication, RedundancyLevel::kReplicate}}) {
    PlaneFixture fx(mode);
    for (uint8_t cls = 0; cls <= 3; ++cls) {
      ASSERT_TRUE(fx.Write(cls, 2 * kChunk, cls).ok());
      EXPECT_EQ(*fx.stripes->LevelOf(Oid(cls)), level);
    }
  }
}

TEST(ReoDataPlaneTest, ReserveCapDowngradesHotData) {
  // Reserve = 10% of 5*256 KiB = 128 KiB = 128 chunks... here: 0.10 * 1280
  // chunks = 128 chunks of reserve.
  PlaneFixture fx(ProtectionMode::kReo, 0.10);
  uint64_t reserve = fx.plane->reserve_bytes();
  ASSERT_GT(reserve, 0u);

  // Fill the reserve with hot data (class 2 -> 2 parity per 3 data).
  uint64_t n = 0;
  while (fx.stripes->redundancy_bytes() + 2 * kChunk <= reserve) {
    ASSERT_TRUE(fx.Write(n++, 3 * kChunk, 2).ok());
  }
  EXPECT_EQ(fx.plane->reserve_rejections(), 0u);

  // The next hot write exceeds the reserve: stored, but unprotected.
  ASSERT_TRUE(fx.Write(900, 3 * kChunk, 2).ok());
  EXPECT_EQ(*fx.stripes->LevelOf(Oid(900)), RedundancyLevel::kNone);
  EXPECT_GE(fx.plane->reserve_rejections(), 1u);
  EXPECT_LE(fx.stripes->redundancy_bytes(), reserve);
}

TEST(ReoDataPlaneTest, DirtyDataExemptFromReserve) {
  PlaneFixture fx(ProtectionMode::kReo, 0.0);  // zero reserve
  ASSERT_TRUE(fx.Write(1, 2 * kChunk, 1).ok());
  // Dirty data must be replicated even with no reserve at all.
  EXPECT_EQ(*fx.stripes->LevelOf(Oid(1)), RedundancyLevel::kReplicate);
  // Hot data cannot be protected.
  ASSERT_TRUE(fx.Write(2, 2 * kChunk, 2).ok());
  EXPECT_EQ(*fx.stripes->LevelOf(Oid(2)), RedundancyLevel::kNone);
}

TEST(ReoDataPlaneTest, SetObjectClassReencodesAndReports0x67) {
  // Reserve of 0.2 % of 5 x 256 KiB = ~2.5 chunks: fits one 2-chunk parity
  // set but not two.
  PlaneFixture fx(ProtectionMode::kReo, 0.002);
  ASSERT_TRUE(fx.Write(1, 3 * kChunk, 3).ok());
  ASSERT_TRUE(fx.Write(2, 3 * kChunk, 3).ok());

  // First upgrade fits the reserve.
  uint64_t reserve = fx.plane->reserve_bytes();
  ASSERT_GE(reserve, 2 * kChunk);
  EXPECT_TRUE(fx.plane->SetObjectClass(Oid(1), 2, 0).ok());
  EXPECT_EQ(*fx.stripes->LevelOf(Oid(1)), RedundancyLevel::kParity2);

  // Second upgrade exhausts it: object stays, caller sees kNoSpace (0x67).
  auto st = fx.plane->SetObjectClass(Oid(2), 2, 0);
  EXPECT_EQ(st.code(), ErrorCode::kNoSpace);
  EXPECT_TRUE(fx.stripes->Contains(Oid(2)));
  EXPECT_EQ(*fx.stripes->LevelOf(Oid(2)), RedundancyLevel::kNone);

  // Downgrading the first releases the reserve; the retry then succeeds.
  EXPECT_TRUE(fx.plane->SetObjectClass(Oid(1), 3, 0).ok());
  EXPECT_TRUE(fx.plane->SetObjectClass(Oid(2), 2, 0).ok());
  EXPECT_EQ(*fx.stripes->LevelOf(Oid(2)), RedundancyLevel::kParity2);
}

TEST(ReoDataPlaneTest, HealthMapping) {
  PlaneFixture fx(ProtectionMode::kReo, 0.5);
  EXPECT_EQ(fx.plane->Health(Oid(1)), ObjectHealth::kAbsent);
  ASSERT_TRUE(fx.Write(1, 6 * kChunk, 2).ok());  // hot -> 2-parity
  ASSERT_TRUE(fx.Write(2, 6 * kChunk, 3).ok());  // cold -> 0-parity
  EXPECT_EQ(fx.plane->Health(Oid(1)), ObjectHealth::kIntact);

  ASSERT_TRUE(fx.array->FailDevice(0).ok());
  (void)fx.stripes->OnDeviceFailure(0);
  EXPECT_EQ(fx.plane->Health(Oid(1)), ObjectHealth::kDegraded);
  EXPECT_EQ(fx.plane->Health(Oid(2)), ObjectHealth::kLost);
}

TEST(ReoDataPlaneTest, ReadWriteRoundTripAndRemove) {
  PlaneFixture fx(ProtectionMode::kReo, 0.5);
  auto payload =
      BackendStore::SynthesizePayload(Oid(1), 0, fx.stripes->PhysicalSize(5 * kChunk));
  ASSERT_TRUE(fx.plane->WriteObject(Oid(1), payload, 5 * kChunk, 2, 0).ok());
  auto io = fx.plane->ReadObject(Oid(1), 0);
  ASSERT_TRUE(io.ok());
  EXPECT_EQ(io->payload, payload);
  EXPECT_FALSE(io->degraded);
  ASSERT_TRUE(fx.plane->RemoveObject(Oid(1)).ok());
  EXPECT_EQ(fx.plane->ReadObject(Oid(1), 0).code(), ErrorCode::kNotFound);
}

TEST(ReoDataPlaneTest, WireSizedPayloadIsChunkPadded) {
  // Wire clients hand over logical-sized payloads; the data plane pads
  // them to the array's chunk geometry instead of rejecting the write.
  PlaneFixture fx(ProtectionMode::kReo, 0.5);
  const uint64_t logical = kChunk / 2 + 7;  // sub-chunk, not chunk-aligned
  std::vector<uint8_t> payload(logical);
  for (uint64_t i = 0; i < logical; ++i) payload[i] = static_cast<uint8_t>(i);

  ASSERT_TRUE(fx.plane->WriteObject(Oid(1), payload, logical, 2, 0).ok());
  auto io = fx.plane->ReadObject(Oid(1), 0);
  ASSERT_TRUE(io.ok());
  ASSERT_EQ(io->payload.size(), fx.stripes->PhysicalSize(logical));
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(), io->payload.begin()));
  for (uint64_t i = logical; i < io->payload.size(); ++i) {
    ASSERT_EQ(io->payload[i], 0u) << "pad byte " << i << " not zero";
  }
}

TEST(ReoDataPlaneTest, HasSpaceForConsidersRedundancy) {
  // 5 devices x 32 chunks = 160 chunks raw.
  PlaneFixture fx(ProtectionMode::kFullReplication, 0.0, 32 * kChunk);
  // Replication needs 5x: 40 chunks of data -> 200 chunks > 160.
  EXPECT_FALSE(fx.plane->HasSpaceFor(40 * kChunk, 3));
  EXPECT_TRUE(fx.plane->HasSpaceFor(30 * kChunk, 3));

  PlaneFixture fx2(ProtectionMode::kUniform0, 0.0, 32 * kChunk);
  EXPECT_TRUE(fx2.plane->HasSpaceFor(150 * kChunk, 3));
}

TEST(ReoDataPlaneTest, RecoveryFlag) {
  PlaneFixture fx(ProtectionMode::kReo);
  EXPECT_FALSE(fx.plane->recovery_active());
  fx.plane->set_recovery_active(true);
  EXPECT_TRUE(fx.plane->recovery_active());
}

TEST(ReoDataPlaneTest, ReserveScalesWithCapacityLimit) {
  // With a capacity limit below the raw device capacity, the Reo-X%
  // reserve is X% of the *limit*, not of the devices.
  FlashDeviceConfig dev;
  dev.capacity_bytes = 1000 * kChunk;
  FlashArray array(5, dev);
  StripeManager stripes(array,
                        StripeManagerConfig{.chunk_logical_bytes = kChunk,
                                            .scale_shift = 0,
                                            .capacity_limit_bytes = 100 * kChunk});
  ReoDataPlane plane(stripes, RedundancyPolicy({.mode = ProtectionMode::kReo,
                                                .reo_reserve_fraction = 0.2}));
  EXPECT_EQ(plane.reserve_bytes(), 20 * kChunk);
}

}  // namespace
}  // namespace reo
