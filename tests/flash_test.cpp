// Flash substrate tests: slot store, latency model, wear accounting,
// failure & replacement, and the array wrapper.
#include <gtest/gtest.h>

#include "flash/flash_array.h"
#include "flash/flash_device.h"

namespace reo {
namespace {

FlashDeviceConfig SmallDevice() {
  FlashDeviceConfig cfg;
  cfg.capacity_bytes = 1 << 20;  // 1 MiB
  cfg.read_mbps = 100.0;
  cfg.write_mbps = 50.0;
  cfg.read_fixed_ns = 1000;
  cfg.write_fixed_ns = 2000;
  cfg.erase_block_bytes = 64 * 1024;
  cfg.pe_cycle_limit = 10;
  return cfg;
}

std::vector<uint8_t> Bytes(size_t n, uint8_t fill) {
  return std::vector<uint8_t>(n, fill);
}

TEST(FlashDeviceTest, WriteReadRoundTrip) {
  FlashDevice dev(SmallDevice());
  auto slot = dev.AllocateSlot(4096);
  ASSERT_TRUE(slot.ok());
  auto payload = Bytes(64, 0x5A);
  ASSERT_TRUE(dev.WriteSlot(*slot, payload).ok());
  auto read = dev.ReadSlot(*slot);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(std::equal(read->begin(), read->end(), payload.begin(), payload.end()));
}

TEST(FlashDeviceTest, SpaceAccounting) {
  FlashDevice dev(SmallDevice());
  EXPECT_EQ(dev.free_bytes(), 1u << 20);
  auto slot = dev.AllocateSlot(1000);
  ASSERT_TRUE(slot.ok());
  EXPECT_EQ(dev.used_bytes(), 1000u);
  EXPECT_EQ(dev.live_slots(), 1u);
  ASSERT_TRUE(dev.FreeSlot(*slot).ok());
  EXPECT_EQ(dev.used_bytes(), 0u);
  EXPECT_EQ(dev.live_slots(), 0u);
}

TEST(FlashDeviceTest, AllocationFailsWhenFull) {
  FlashDevice dev(SmallDevice());
  auto s1 = dev.AllocateSlot((1 << 20) - 100);
  ASSERT_TRUE(s1.ok());
  auto s2 = dev.AllocateSlot(200);
  EXPECT_EQ(s2.code(), ErrorCode::kNoSpace);
  // Exactly fitting succeeds.
  auto s3 = dev.AllocateSlot(100);
  EXPECT_TRUE(s3.ok());
}

TEST(FlashDeviceTest, SlotReuseAfterFree) {
  FlashDevice dev(SmallDevice());
  auto s1 = dev.AllocateSlot(100);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(dev.FreeSlot(*s1).ok());
  auto s2 = dev.AllocateSlot(100);
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(*s2, *s1);  // free list reuses the slot id
}

TEST(FlashDeviceTest, InvalidSlotOperations) {
  FlashDevice dev(SmallDevice());
  EXPECT_EQ(dev.ReadSlot(7).code(), ErrorCode::kNotFound);
  EXPECT_EQ(dev.FreeSlot(7).code(), ErrorCode::kNotFound);
  EXPECT_EQ(dev.WriteSlot(7, Bytes(8, 0)).code(), ErrorCode::kNotFound);
  EXPECT_EQ(dev.AllocateSlot(0).code(), ErrorCode::kInvalidArgument);
}

TEST(FlashDeviceTest, ServiceTimeModel) {
  FlashDevice dev(SmallDevice());
  // read: 1000 ns fixed + 100000 bytes at 100 MB/s = 1e6 ns.
  EXPECT_EQ(dev.ServiceTime(100000, false), 1000u + 1000000u);
  // write: 2000 ns fixed + 100000 bytes at 50 MB/s = 2e6 ns.
  EXPECT_EQ(dev.ServiceTime(100000, true), 2000u + 2000000u);
}

TEST(FlashDeviceTest, IoSerializesOnDevice) {
  FlashDevice dev(SmallDevice());
  SimTime t1 = dev.SubmitIo(0, 100000, false);
  SimTime t2 = dev.SubmitIo(0, 100000, false);  // queues behind t1
  EXPECT_EQ(t2, 2 * t1);
  // An IO submitted after the queue drains starts fresh.
  SimTime t3 = dev.SubmitIo(t2 + 500, 100000, false);
  EXPECT_EQ(t3, t2 + 500 + t1);
}

TEST(FlashDeviceTest, FailureSemantics) {
  FlashDevice dev(SmallDevice());
  auto slot = dev.AllocateSlot(100);
  ASSERT_TRUE(slot.ok());
  ASSERT_TRUE(dev.WriteSlot(*slot, Bytes(16, 1)).ok());
  dev.Fail();
  EXPECT_FALSE(dev.healthy());
  EXPECT_EQ(dev.ReadSlot(*slot).code(), ErrorCode::kUnavailable);
  EXPECT_EQ(dev.WriteSlot(*slot, Bytes(16, 2)).code(), ErrorCode::kUnavailable);
  EXPECT_EQ(dev.AllocateSlot(10).code(), ErrorCode::kUnavailable);
}

TEST(FlashDeviceTest, ReplaceYieldsFreshDevice) {
  FlashDevice dev(SmallDevice());
  auto slot = dev.AllocateSlot(100);
  ASSERT_TRUE(slot.ok());
  ASSERT_TRUE(dev.WriteSlot(*slot, Bytes(16, 1)).ok());
  dev.Fail();
  dev.Replace();
  EXPECT_TRUE(dev.healthy());
  EXPECT_EQ(dev.used_bytes(), 0u);
  EXPECT_EQ(dev.wear().bytes_written, 0u);
  EXPECT_EQ(dev.ReadSlot(*slot).code(), ErrorCode::kNotFound);
}

TEST(FlashDeviceTest, WearAccounting) {
  FlashDevice dev(SmallDevice());
  // Write 128 KiB total -> 2 erase blocks of 64 KiB.
  for (int i = 0; i < 2; ++i) {
    auto slot = dev.AllocateSlot(64 * 1024);
    ASSERT_TRUE(slot.ok());
    ASSERT_TRUE(dev.WriteSlot(*slot, Bytes(64, 0)).ok());
  }
  EXPECT_EQ(dev.wear().bytes_written, 128u * 1024);
  EXPECT_EQ(dev.wear().erase_cycles, 2u);
  EXPECT_EQ(dev.wear().io_writes, 2u);
  // 16 blocks * 10 P/E = 160 total cycles; 2 used -> 1.25 %.
  EXPECT_NEAR(dev.wear().WearFraction(dev.config()), 2.0 / 160.0, 1e-9);
}

TEST(FlashDeviceTest, ReadTracksTraffic) {
  FlashDevice dev(SmallDevice());
  auto slot = dev.AllocateSlot(5000);
  ASSERT_TRUE(slot.ok());
  ASSERT_TRUE(dev.WriteSlot(*slot, Bytes(8, 3)).ok());
  ASSERT_TRUE(dev.ReadSlot(*slot).ok());
  EXPECT_EQ(dev.wear().bytes_read, 5000u);
  EXPECT_EQ(dev.wear().io_reads, 1u);
}

// --- FlashArray ----------------------------------------------------------------

TEST(FlashArrayTest, ConstructionAssignsIds) {
  FlashArray arr(5, SmallDevice());
  EXPECT_EQ(arr.size(), 5u);
  for (DeviceIndex i = 0; i < 5; ++i) {
    EXPECT_EQ(arr.device(i).config().id, i);
  }
  EXPECT_EQ(arr.healthy_count(), 5u);
  EXPECT_EQ(arr.total_capacity_bytes(), 5u << 20);
}

TEST(FlashArrayTest, FailAndReplace) {
  FlashArray arr(3, SmallDevice());
  ASSERT_TRUE(arr.FailDevice(1).ok());
  EXPECT_EQ(arr.healthy_count(), 2u);
  EXPECT_EQ(arr.HealthyDevices(), (std::vector<DeviceIndex>{0, 2}));
  // Double-fail rejected.
  EXPECT_EQ(arr.FailDevice(1).code(), ErrorCode::kInvalidArgument);
  ASSERT_TRUE(arr.ReplaceDevice(1).ok());
  EXPECT_EQ(arr.healthy_count(), 3u);
}

TEST(FlashArrayTest, BoundsChecked) {
  FlashArray arr(2, SmallDevice());
  EXPECT_EQ(arr.FailDevice(9).code(), ErrorCode::kNotFound);
  EXPECT_EQ(arr.ReplaceDevice(9).code(), ErrorCode::kNotFound);
}

TEST(FlashArrayTest, UsedBytesCountsHealthyOnly) {
  FlashArray arr(2, SmallDevice());
  auto s = arr.device(0).AllocateSlot(1000);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(arr.used_bytes(), 1000u);
  ASSERT_TRUE(arr.FailDevice(0).ok());
  EXPECT_EQ(arr.used_bytes(), 0u);
}

}  // namespace
}  // namespace reo
