// MediSyn-like workload generator tests: the statistical properties the
// paper's traces have (§VI.A).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/units.h"
#include "workload/medisyn.h"

namespace reo {
namespace {

/// Fraction of requests hitting the top `n` most-requested objects.
double TopShare(const Trace& t, size_t n) {
  std::map<uint32_t, uint64_t> counts;
  for (const auto& r : t.requests) counts[r.object]++;
  std::vector<uint64_t> v;
  v.reserve(counts.size());
  for (auto& [_, c] : counts) v.push_back(c);
  std::sort(v.rbegin(), v.rend());
  uint64_t top = 0;
  for (size_t i = 0; i < std::min(n, v.size()); ++i) top += v[i];
  return static_cast<double>(top) / static_cast<double>(t.requests.size());
}

TEST(MediSynTest, PaperScaleParameters) {
  auto weak = GenerateMediSyn(WeakLocalityConfig());
  auto medium = GenerateMediSyn(MediumLocalityConfig());
  auto strong = GenerateMediSyn(StrongLocalityConfig());

  EXPECT_EQ(weak.requests.size(), 25616u);
  EXPECT_EQ(medium.requests.size(), 51057u);
  EXPECT_EQ(strong.requests.size(), 89723u);
  EXPECT_EQ(weak.catalog.count(), 4000u);

  // Dataset ~= 17.04 GB (paper §VI.A), within size-rounding tolerance.
  double total = static_cast<double>(weak.catalog.TotalBytes());
  EXPECT_NEAR(total, 17.04e9, 0.01 * 17.04e9);
  // All three traces share the same catalog distribution parameters.
  EXPECT_EQ(weak.catalog.count(), strong.catalog.count());
}

TEST(MediSynTest, TotalAccessedBytesMatchPaperOrder) {
  auto weak = GenerateMediSyn(WeakLocalityConfig());
  auto medium = GenerateMediSyn(MediumLocalityConfig());
  auto strong = GenerateMediSyn(StrongLocalityConfig());
  // Paper: ~109.4 GB, ~220 GB, ~386.8 GB. Allow 15 % tolerance: request
  // counts are exact but which objects repeat is stochastic.
  EXPECT_NEAR(static_cast<double>(weak.TotalAccessedBytes()), 109.4e9, 18e9);
  EXPECT_NEAR(static_cast<double>(medium.TotalAccessedBytes()), 220.0e9, 35e9);
  EXPECT_NEAR(static_cast<double>(strong.TotalAccessedBytes()), 386.8e9, 60e9);
}

TEST(MediSynTest, Deterministic) {
  auto a = GenerateMediSyn(MediumLocalityConfig());
  auto b = GenerateMediSyn(MediumLocalityConfig());
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_EQ(a.requests[i].object, b.requests[i].object);
    EXPECT_EQ(a.requests[i].is_write, b.requests[i].is_write);
  }
  EXPECT_EQ(a.catalog.sizes, b.catalog.sizes);
}

TEST(MediSynTest, SeedChangesTrace) {
  auto cfg = MediumLocalityConfig();
  auto a = GenerateMediSyn(cfg);
  cfg.seed += 1;
  auto b = GenerateMediSyn(cfg);
  size_t diff = 0;
  for (size_t i = 0; i < a.requests.size(); ++i) {
    diff += a.requests[i].object != b.requests[i].object ? 1 : 0;
  }
  EXPECT_GT(diff, a.requests.size() / 2);
}

TEST(MediSynTest, LocalityOrdering) {
  auto weak = GenerateMediSyn(WeakLocalityConfig());
  auto medium = GenerateMediSyn(MediumLocalityConfig());
  auto strong = GenerateMediSyn(StrongLocalityConfig());
  double w = TopShare(weak, 100), m = TopShare(medium, 100), s = TopShare(strong, 100);
  EXPECT_LT(w, m);
  EXPECT_LT(m, s);
}

TEST(MediSynTest, ReadOnlyByDefault) {
  auto t = GenerateMediSyn(WeakLocalityConfig());
  EXPECT_EQ(t.WriteCount(), 0u);
}

TEST(MediSynTest, WriteRatioRespected) {
  for (double ratio : {0.1, 0.3, 0.5}) {
    auto t = GenerateMediSyn(WriteIntensiveConfig(ratio));
    double measured =
        static_cast<double>(t.WriteCount()) / static_cast<double>(t.requests.size());
    EXPECT_NEAR(measured, ratio, 0.01) << "ratio " << ratio;
  }
}

TEST(MediSynTest, SizesRespectFloorAndGranularity) {
  auto t = GenerateMediSyn(MediumLocalityConfig());
  for (uint64_t s : t.catalog.sizes) {
    EXPECT_GE(s, 64u * 1024);
    EXPECT_EQ(s % 4096, 0u);
  }
}

TEST(MediSynTest, PopularityNotCorrelatedWithIndex) {
  // The hottest object should not always be object 0: rank->object is a
  // seeded permutation.
  auto t = GenerateMediSyn(MediumLocalityConfig());
  std::map<uint32_t, uint64_t> counts;
  for (const auto& r : t.requests) counts[r.object]++;
  uint32_t hottest = 0;
  uint64_t best = 0;
  for (auto& [obj, c] : counts) {
    if (c > best) {
      best = c;
      hottest = obj;
    }
  }
  EXPECT_NE(hottest, 0u);
}

TEST(MediSynTest, RequestsCoverManyObjects) {
  auto t = GenerateMediSyn(MediumLocalityConfig());
  std::set<uint32_t> distinct;
  for (const auto& r : t.requests) distinct.insert(r.object);
  EXPECT_GT(distinct.size(), 2000u);
}

TEST(TraceTest, IdForMapsAboveReservedRange) {
  ObjectId id = ObjectCatalog::IdFor(0);
  EXPECT_EQ(id.pid, kFirstUserId);
  EXPECT_GT(id.oid, kControlObject.oid);
}

}  // namespace
}  // namespace reo
