// Tests for the two reliability extensions beyond whole-object IO:
// in-place partial updates with §II.B parity maintenance, and the latent-
// corruption scrubber.
#include <gtest/gtest.h>

#include <memory>

#include "array/stripe_manager.h"
#include "backend/backend_store.h"
#include "common/rng.h"
#include "core/cache_manager.h"

namespace reo {
namespace {

constexpr uint64_t kChunk = 1024;

ObjectId Oid(uint64_t n) { return ObjectId{kFirstUserId, 0x20000 + n}; }

struct Fixture {
  Fixture() {
    FlashDeviceConfig dev;
    dev.capacity_bytes = 1 << 20;
    array = std::make_unique<FlashArray>(5, dev);
    stripes = std::make_unique<StripeManager>(
        *array,
        StripeManagerConfig{.chunk_logical_bytes = kChunk, .scale_shift = 0});
  }

  std::vector<uint8_t> Put(uint64_t n, uint64_t logical, RedundancyLevel level) {
    auto payload =
        BackendStore::SynthesizePayload(Oid(n), 0, stripes->PhysicalSize(logical));
    REO_CHECK(stripes->PutObject(Oid(n), payload, logical, level, 0).ok());
    return payload;
  }

  /// Finds the device+slot of a stored chunk by probing corruption: walks
  /// devices and corrupts the i-th live slot overall.
  void CorruptNthLiveSlot(size_t target) {
    size_t seen = 0;
    for (DeviceIndex d = 0; d < array->size(); ++d) {
      auto& dev = array->device(d);
      for (SlotId s = 0; s < 10000; ++s) {
        if (dev.CorruptSlot(s, 7).ok()) {
          if (seen++ == target) return;
          // Undo: corrupting twice restores the byte.
          (void)dev.CorruptSlot(s, 7);
        } else if (seen > target + 64) {
          return;
        }
      }
    }
  }

  std::unique_ptr<FlashArray> array;
  std::unique_ptr<StripeManager> stripes;
};

// --- Partial updates ----------------------------------------------------------

class PartialUpdateP : public ::testing::TestWithParam<RedundancyLevel> {};

TEST_P(PartialUpdateP, RangeUpdatePreservesParityInvariants) {
  Fixture fx;
  uint64_t logical = 9 * kChunk;
  auto payload = fx.Put(1, logical, GetParam());

  // Overwrite a range spanning chunk boundaries (mid chunk 2 .. mid 5).
  Pcg32 rng(77);
  uint64_t offset = 2 * kChunk + 300;
  std::vector<uint8_t> update(3 * kChunk + 100);
  for (auto& b : update) b = static_cast<uint8_t>(rng.Next());
  auto io = fx.stripes->UpdateObjectRange(Oid(1), offset, update, 0);
  ASSERT_TRUE(io.ok()) << io.status().to_string();
  EXPECT_GT(io->chunk_writes, 0u);

  std::copy(update.begin(), update.end(),
            payload.begin() + static_cast<long>(offset));
  auto got = fx.stripes->GetObject(Oid(1), 0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->payload, payload);

  // Parity must have been maintained: a post-update failure is survivable
  // and decodes the *updated* content.
  size_t survivable = FailuresSurvived(GetParam(), 5);
  if (survivable == 0) return;
  for (size_t f = 0; f < survivable; ++f) {
    ASSERT_TRUE(fx.array->FailDevice(static_cast<DeviceIndex>(f)).ok());
    (void)fx.stripes->OnDeviceFailure(static_cast<DeviceIndex>(f));
  }
  auto degraded = fx.stripes->GetObject(Oid(1), 0);
  ASSERT_TRUE(degraded.ok());
  EXPECT_EQ(degraded->payload, payload);
}

INSTANTIATE_TEST_SUITE_P(Levels, PartialUpdateP,
                         ::testing::Values(RedundancyLevel::kNone,
                                           RedundancyLevel::kParity1,
                                           RedundancyLevel::kParity2,
                                           RedundancyLevel::kReplicate),
                         [](const auto& info) {
                           switch (info.param) {
                             case RedundancyLevel::kNone: return "none";
                             case RedundancyLevel::kParity1: return "parity1";
                             case RedundancyLevel::kParity2: return "parity2";
                             case RedundancyLevel::kReplicate: return "replicate";
                           }
                           return "?";
                         });

TEST(PartialUpdateTest, SubChunkUpdate) {
  Fixture fx;
  auto payload = fx.Put(1, 4 * kChunk, RedundancyLevel::kParity1);
  std::vector<uint8_t> update(10, 0xEE);
  ASSERT_TRUE(fx.stripes->UpdateObjectRange(Oid(1), 1500, update, 0).ok());
  std::copy(update.begin(), update.end(), payload.begin() + 1500);
  auto got = fx.stripes->GetObject(Oid(1), 0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->payload, payload);
}

TEST(PartialUpdateTest, RangeValidation) {
  Fixture fx;
  fx.Put(1, 2 * kChunk, RedundancyLevel::kNone);
  std::vector<uint8_t> update(10);
  EXPECT_EQ(fx.stripes
                ->UpdateObjectRange(Oid(1), 2 * kChunk - 5, update, 0)
                .code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(fx.stripes->UpdateObjectRange(Oid(9), 0, update, 0).code(),
            ErrorCode::kNotFound);
  // Empty update is a no-op.
  EXPECT_TRUE(fx.stripes->UpdateObjectRange(Oid(1), 0, {}, 0).ok());
}

TEST(PartialUpdateTest, RefusesDamagedStripes) {
  Fixture fx;
  fx.Put(1, 6 * kChunk, RedundancyLevel::kParity2);
  ASSERT_TRUE(fx.array->FailDevice(0).ok());
  (void)fx.stripes->OnDeviceFailure(0);
  std::vector<uint8_t> update(kChunk, 1);
  EXPECT_EQ(fx.stripes->UpdateObjectRange(Oid(1), 0, update, 0).code(),
            ErrorCode::kUnavailable);
  // After rebuilding, updates work again.
  ASSERT_TRUE(fx.stripes->RebuildObject(Oid(1), 0).ok());
  EXPECT_TRUE(fx.stripes->UpdateObjectRange(Oid(1), 0, update, 0).ok());
}

TEST(PartialUpdateTest, CostModelExposed) {
  Fixture fx;
  fx.Put(1, 9 * kChunk, RedundancyLevel::kParity2);  // stripes m=3, k=2
  auto cost = fx.stripes->UpdateCostOf(Oid(1));
  ASSERT_TRUE(cost.ok());
  EXPECT_EQ(cost->direct_reads, 2u);
  EXPECT_EQ(cost->delta_reads, 3u);
}

TEST(PartialUpdateTest, UpdateChargesDeviceTime) {
  Fixture fx;
  fx.Put(1, 6 * kChunk, RedundancyLevel::kParity1);
  std::vector<uint8_t> update(kChunk, 5);
  auto io = fx.stripes->UpdateObjectRange(Oid(1), 0, update, 1000);
  ASSERT_TRUE(io.ok());
  EXPECT_GT(io->complete, 1000u);
  EXPECT_GE(io->chunk_reads, 1u);   // old data (and parity for delta)
  EXPECT_GE(io->chunk_writes, 2u);  // data + parity
}

// --- Scrubber ------------------------------------------------------------------

TEST(ScrubberTest, CleanArrayScansEverythingFindsNothing) {
  Fixture fx;
  fx.Put(1, 6 * kChunk, RedundancyLevel::kParity2);
  auto report = fx.stripes->Scrub(0);
  // 6 data chunks + 2 stripes x 2 parity = 10.
  EXPECT_EQ(report.chunks_scanned, 10u);
  EXPECT_EQ(report.corrupt_found, 0u);
  EXPECT_EQ(report.chunks_repaired, 0u);
  EXPECT_TRUE(report.lost.empty());
}

TEST(ScrubberTest, RepairsLatentCorruptionWithinParity) {
  Fixture fx;
  auto payload = fx.Put(1, 6 * kChunk, RedundancyLevel::kParity2);
  // Corrupt one slot silently.
  ASSERT_TRUE(fx.array->device(0).CorruptSlot(0, 3).ok());

  auto report = fx.stripes->Scrub(0);
  EXPECT_EQ(report.corrupt_found, 1u);
  EXPECT_EQ(report.chunks_repaired, 1u);
  EXPECT_TRUE(report.lost.empty());
  EXPECT_GT(report.complete, 0u);

  auto got = fx.stripes->GetObject(Oid(1), 0);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got->degraded);
  EXPECT_EQ(got->payload, payload);
  EXPECT_EQ(fx.stripes->SurvivalOf(Oid(1)), ObjectSurvival::kIntact);
}

TEST(ScrubberTest, UnprotectedCorruptionIsLost) {
  Fixture fx;
  fx.Put(1, 5 * kChunk, RedundancyLevel::kNone);
  ASSERT_TRUE(fx.array->device(0).CorruptSlot(0, 0).ok());
  auto report = fx.stripes->Scrub(0);
  EXPECT_EQ(report.corrupt_found, 1u);
  EXPECT_EQ(report.chunks_repaired, 0u);
  ASSERT_EQ(report.lost.size(), 1u);
  EXPECT_EQ(report.lost[0], Oid(1));
}

TEST(ScrubberTest, ReplicatedObjectSurvivesManyCorruptions) {
  Fixture fx;
  auto payload = fx.Put(1, kChunk, RedundancyLevel::kReplicate);
  // Corrupt four of the five copies (slot 0 on four devices).
  for (DeviceIndex d = 0; d < 4; ++d) {
    ASSERT_TRUE(fx.array->device(d).CorruptSlot(0, 1).ok());
  }
  auto report = fx.stripes->Scrub(0);
  EXPECT_EQ(report.corrupt_found, 4u);
  EXPECT_EQ(report.chunks_repaired, 4u);
  auto got = fx.stripes->GetObject(Oid(1), 0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->payload, payload);
}

TEST(ScrubberTest, CacheManagerEvictsScrubLosses) {
  FlashDeviceConfig dev;
  dev.capacity_bytes = 1 << 20;
  FlashArray array(5, dev);
  StripeManager stripes(array, {.chunk_logical_bytes = kChunk, .scale_shift = 0});
  ReoDataPlane plane(stripes, RedundancyPolicy({.mode = ProtectionMode::kReo,
                                                .reo_reserve_fraction = 0.2}));
  OsdTarget target(plane);
  BackendStore backend(HddConfig{}, NetworkLinkConfig{});
  CacheManager cache(target, plane, backend, CacheManagerConfig{});
  cache.Initialize(0);

  backend.RegisterObject(Oid(1), 5 * kChunk, stripes.PhysicalSize(5 * kChunk));
  (void)cache.Get(Oid(1), 5 * kChunk, 0);  // admitted cold (unprotected)
  ASSERT_TRUE(stripes.Contains(Oid(1)));

  // Silently corrupt one of its chunks, then scrub.
  bool corrupted = false;
  for (DeviceIndex d = 0; d < array.size() && !corrupted; ++d) {
    for (SlotId s = 0; s < 64 && !corrupted; ++s) {
      // Skip metadata slots: corrupt only if this slot belongs to a cold
      // 0-parity stripe — cheap heuristic: try, scrub will tell.
      corrupted = array.device(d).CorruptSlot(s, 2).ok();
    }
  }
  ASSERT_TRUE(corrupted);
  auto report = cache.RunScrub(0);
  EXPECT_EQ(report.corrupt_found, 1u);
  // Either it hit a replicated metadata chunk (repaired) or the cold
  // object (evicted); both leave the cache consistent.
  if (!report.lost.empty()) {
    EXPECT_FALSE(stripes.Contains(report.lost[0]));
  }
  EXPECT_TRUE(stripes.DamagedObjects().empty());
}

}  // namespace
}  // namespace reo
