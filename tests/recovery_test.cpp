// Differentiated-recovery ordering tests (paper §IV.D): class 0 first,
// then class 1, 2, 3; hottest first within a class — at the scheduler
// level and as observed through the EventLog's recovery timeline.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/cache_manager.h"
#include "core/recovery_scheduler.h"
#include "trace/tracer.h"

namespace reo {
namespace {

ObjectId Oid(uint64_t n) { return ObjectId{kFirstUserId, 0x20000 + n}; }

TEST(RecoverySchedulerTest, ClassOrderDominates) {
  RecoveryScheduler s;
  s.Enqueue(Oid(3), DataClass::kColdClean, 99.0, 10);
  s.Enqueue(Oid(2), DataClass::kHotClean, 0.5, 10);
  s.Enqueue(Oid(0), DataClass::kMetadata, 0.0, 10);
  s.Enqueue(Oid(1), DataClass::kDirty, 0.1, 10);

  EXPECT_EQ(*s.Pop(), Oid(0));  // metadata first
  EXPECT_EQ(*s.Pop(), Oid(1));  // dirty
  EXPECT_EQ(*s.Pop(), Oid(2));  // hot clean
  EXPECT_EQ(*s.Pop(), Oid(3));  // cold clean — even with the highest H
  EXPECT_FALSE(s.Pop().has_value());
}

TEST(RecoverySchedulerTest, HotFirstWithinClass) {
  RecoveryScheduler s;
  s.Enqueue(Oid(1), DataClass::kHotClean, 0.1, 1);
  s.Enqueue(Oid(2), DataClass::kHotClean, 0.9, 1);
  s.Enqueue(Oid(3), DataClass::kHotClean, 0.5, 1);
  EXPECT_EQ(*s.Pop(), Oid(2));
  EXPECT_EQ(*s.Pop(), Oid(3));
  EXPECT_EQ(*s.Pop(), Oid(1));
}

TEST(RecoverySchedulerTest, PendingBytesTracked) {
  RecoveryScheduler s;
  s.Enqueue(Oid(1), DataClass::kHotClean, 0.1, 100);
  s.Enqueue(Oid(2), DataClass::kHotClean, 0.2, 50);
  EXPECT_EQ(s.pending_bytes(), 150u);
  s.Remove(Oid(1));
  EXPECT_EQ(s.pending_bytes(), 50u);
  EXPECT_EQ(s.size(), 1u);
  s.Clear();
  EXPECT_EQ(s.pending_bytes(), 0u);
  EXPECT_TRUE(s.empty());
}

TEST(RecoverySchedulerTest, ReEnqueueReplaces) {
  RecoveryScheduler s;
  s.Enqueue(Oid(1), DataClass::kColdClean, 0.1, 100);
  s.Enqueue(Oid(2), DataClass::kHotClean, 0.5, 10);
  // Re-prioritize object 1 as dirty: it must now pop first.
  s.Enqueue(Oid(1), DataClass::kDirty, 0.1, 100);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.pending_bytes(), 110u);
  EXPECT_EQ(*s.Pop(), Oid(1));
}

TEST(RecoverySchedulerTest, RemoveMissingIsNoop) {
  RecoveryScheduler s;
  s.Remove(Oid(7));
  EXPECT_TRUE(s.empty());
}

TEST(RecoverySchedulerTest, PeekDoesNotConsume) {
  RecoveryScheduler s;
  s.Enqueue(Oid(1), DataClass::kDirty, 0.1, 1);
  EXPECT_EQ(*s.Peek(), Oid(1));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(*s.Pop(), Oid(1));
}

TEST(RecoverySchedulerTest, DeterministicTieBreakById) {
  RecoveryScheduler s;
  s.Enqueue(Oid(5), DataClass::kHotClean, 0.5, 1);
  s.Enqueue(Oid(3), DataClass::kHotClean, 0.5, 1);
  EXPECT_EQ(*s.Pop(), Oid(3));
  EXPECT_EQ(*s.Pop(), Oid(5));
}

TEST(RecoveryTimelineTest, EventLogShowsDifferentiatedOrder) {
  // End-to-end view of the same ordering through the structured event log:
  // a device failure emits "device.failure" first, the critical classes
  // (0 metadata, 1 dirty) rebuild synchronously inside the handler
  // (mode=on-demand), and the drain rebuilds the rest in nondecreasing
  // class order (mode=background), closed by "recovery.complete".
  constexpr uint64_t kChunk = 1024;
  FlashDeviceConfig dev;
  dev.capacity_bytes = 256 * kChunk;
  auto array = std::make_unique<FlashArray>(5, dev);
  auto stripes = std::make_unique<StripeManager>(
      *array,
      StripeManagerConfig{.chunk_logical_bytes = kChunk, .scale_shift = 0});
  auto plane = std::make_unique<ReoDataPlane>(
      *stripes, RedundancyPolicy({.mode = ProtectionMode::kReo,
                                  .reo_reserve_fraction = 0.25}));
  auto target = std::make_unique<OsdTarget>(*plane);
  auto backend = std::make_unique<BackendStore>(HddConfig{}, NetworkLinkConfig{});
  CacheManagerConfig cfg;
  cfg.hhot_refresh_interval = 10;
  auto cache =
      std::make_unique<CacheManager>(*target, *plane, *backend, cfg);
  Tracer tracer;
  cache->AttachTracing(tracer);
  cache->Initialize(0);

  SimClock clock;
  auto run = [&](auto&& fn) { clock.Advance(fn(clock.now()).latency); };
  // Class 1: a dirty write. Class 2: a hammered-hot object. Class 3: a
  // cold single-access object (unprotected; lost, not rebuilt).
  backend->RegisterObject(Oid(1), 4 * kChunk, stripes->PhysicalSize(4 * kChunk));
  backend->RegisterObject(Oid(2), 8 * kChunk, stripes->PhysicalSize(8 * kChunk));
  backend->RegisterObject(Oid(3), 8 * kChunk, stripes->PhysicalSize(8 * kChunk));
  run([&](SimTime t) { return cache->Put(Oid(1), 4 * kChunk, t); });
  for (int i = 0; i < 12; ++i) {
    run([&](SimTime t) { return cache->Get(Oid(2), 8 * kChunk, t); });
  }
  ASSERT_EQ(*stripes->LevelOf(Oid(2)), RedundancyLevel::kParity2);
  run([&](SimTime t) { return cache->Get(Oid(3), 8 * kChunk, t); });

  cache->OnDeviceFailure(0, clock.now());
  cache->DrainRecovery(clock.now());

  const auto& events = tracer.events().events();
  int failure_at = -1, complete_at = -1;
  std::vector<std::pair<int, const LoggedEvent*>> rebuilds;  // (index, event)
  for (size_t i = 0; i < events.size(); ++i) {
    const LoggedEvent& e = events[i];
    if (e.category == "device.failure" && failure_at < 0) {
      failure_at = static_cast<int>(i);
    } else if (e.category == "recovery.complete") {
      complete_at = static_cast<int>(i);
    } else if (e.category == "recovery.rebuild") {
      rebuilds.emplace_back(static_cast<int>(i), &e);
    }
  }
  ASSERT_GE(failure_at, 0);
  ASSERT_GE(complete_at, 0);
  ASSERT_FALSE(rebuilds.empty());

  // Every rebuild sits between the failure and the completion event, and
  // the on-demand (critical, class <= 1) block strictly precedes the
  // background block, whose classes never decrease.
  bool seen_background = false;
  int prev_background_class = -1;
  for (const auto& [idx, e] : rebuilds) {
    EXPECT_GT(idx, failure_at);
    EXPECT_LT(idx, complete_at);
    int cls = std::stoi(std::string(e->Field("class")));
    if (e->Field("mode") == "on-demand") {
      EXPECT_FALSE(seen_background) << "critical rebuild after background";
      EXPECT_LE(cls, 1);
    } else {
      ASSERT_EQ(e->Field("mode"), "background");
      seen_background = true;
      EXPECT_GE(cls, prev_background_class);
      prev_background_class = cls;
    }
  }
  EXPECT_TRUE(seen_background);  // the hot clean object went through drain

  // The rolled-up timeline mentions the milestones and the class tallies.
  std::string timeline = tracer.events().RecoveryTimeline();
  EXPECT_NE(timeline.find("device.failure"), std::string::npos);
  EXPECT_NE(timeline.find("rebuilds by class"), std::string::npos);
  EXPECT_NE(timeline.find("recovery.complete"), std::string::npos);
}

}  // namespace
}  // namespace reo
