// Differentiated-recovery ordering tests (paper §IV.D): class 0 first,
// then class 1, 2, 3; hottest first within a class.
#include <gtest/gtest.h>

#include "core/recovery_scheduler.h"

namespace reo {
namespace {

ObjectId Oid(uint64_t n) { return ObjectId{kFirstUserId, 0x20000 + n}; }

TEST(RecoverySchedulerTest, ClassOrderDominates) {
  RecoveryScheduler s;
  s.Enqueue(Oid(3), DataClass::kColdClean, 99.0, 10);
  s.Enqueue(Oid(2), DataClass::kHotClean, 0.5, 10);
  s.Enqueue(Oid(0), DataClass::kMetadata, 0.0, 10);
  s.Enqueue(Oid(1), DataClass::kDirty, 0.1, 10);

  EXPECT_EQ(*s.Pop(), Oid(0));  // metadata first
  EXPECT_EQ(*s.Pop(), Oid(1));  // dirty
  EXPECT_EQ(*s.Pop(), Oid(2));  // hot clean
  EXPECT_EQ(*s.Pop(), Oid(3));  // cold clean — even with the highest H
  EXPECT_FALSE(s.Pop().has_value());
}

TEST(RecoverySchedulerTest, HotFirstWithinClass) {
  RecoveryScheduler s;
  s.Enqueue(Oid(1), DataClass::kHotClean, 0.1, 1);
  s.Enqueue(Oid(2), DataClass::kHotClean, 0.9, 1);
  s.Enqueue(Oid(3), DataClass::kHotClean, 0.5, 1);
  EXPECT_EQ(*s.Pop(), Oid(2));
  EXPECT_EQ(*s.Pop(), Oid(3));
  EXPECT_EQ(*s.Pop(), Oid(1));
}

TEST(RecoverySchedulerTest, PendingBytesTracked) {
  RecoveryScheduler s;
  s.Enqueue(Oid(1), DataClass::kHotClean, 0.1, 100);
  s.Enqueue(Oid(2), DataClass::kHotClean, 0.2, 50);
  EXPECT_EQ(s.pending_bytes(), 150u);
  s.Remove(Oid(1));
  EXPECT_EQ(s.pending_bytes(), 50u);
  EXPECT_EQ(s.size(), 1u);
  s.Clear();
  EXPECT_EQ(s.pending_bytes(), 0u);
  EXPECT_TRUE(s.empty());
}

TEST(RecoverySchedulerTest, ReEnqueueReplaces) {
  RecoveryScheduler s;
  s.Enqueue(Oid(1), DataClass::kColdClean, 0.1, 100);
  s.Enqueue(Oid(2), DataClass::kHotClean, 0.5, 10);
  // Re-prioritize object 1 as dirty: it must now pop first.
  s.Enqueue(Oid(1), DataClass::kDirty, 0.1, 100);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.pending_bytes(), 110u);
  EXPECT_EQ(*s.Pop(), Oid(1));
}

TEST(RecoverySchedulerTest, RemoveMissingIsNoop) {
  RecoveryScheduler s;
  s.Remove(Oid(7));
  EXPECT_TRUE(s.empty());
}

TEST(RecoverySchedulerTest, PeekDoesNotConsume) {
  RecoveryScheduler s;
  s.Enqueue(Oid(1), DataClass::kDirty, 0.1, 1);
  EXPECT_EQ(*s.Peek(), Oid(1));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(*s.Pop(), Oid(1));
}

TEST(RecoverySchedulerTest, DeterministicTieBreakById) {
  RecoveryScheduler s;
  s.Enqueue(Oid(5), DataClass::kHotClean, 0.5, 1);
  s.Enqueue(Oid(3), DataClass::kHotClean, 0.5, 1);
  EXPECT_EQ(*s.Pop(), Oid(3));
  EXPECT_EQ(*s.Pop(), Oid(5));
}

}  // namespace
}  // namespace reo
