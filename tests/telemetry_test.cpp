// MetricRegistry: registration semantics, snapshot export, collisions.
#include "telemetry/metric_registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "flash/flash_device.h"

namespace reo {
namespace {

TEST(MetricRegistryTest, CounterGaugeBasics) {
  MetricRegistry reg;
  Counter& c = reg.GetCounter("osd.commands");
  c.Inc();
  c.Inc(9);
  EXPECT_EQ(c.value(), 10u);

  Gauge& g = reg.GetGauge("flash.devices");
  g.Set(5.0);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);

  ShardedHistogram& h = reg.GetHistogram("cache.latency.hit_us");
  h.Add(100.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(reg.size(), 3u);
}

TEST(MetricRegistryTest, RegistrationIsIdempotent) {
  MetricRegistry reg;
  Counter& a = reg.GetCounter("cache.class0.hits");
  a.Inc(7);
  Counter& b = reg.GetCounter("cache.class0.hits");
  EXPECT_EQ(&a, &b);  // same object, not a fresh zeroed one
  EXPECT_EQ(b.value(), 7u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricRegistryTest, NullTolerantHelpers) {
  // Un-attached components call through null pointers freely.
  Inc(static_cast<Counter*>(nullptr));
  Set(static_cast<Gauge*>(nullptr), 1.0);
  Observe(static_cast<Histogram*>(nullptr), 1.0);
  Observe(static_cast<ShardedHistogram*>(nullptr), 1.0);

  MetricRegistry reg;
  Counter& c = reg.GetCounter("x");
  Inc(&c, 3);
  EXPECT_EQ(c.value(), 3u);
}

TEST(MetricRegistryTest, CrossKindCollisionYieldsScratchMetric) {
  MetricRegistry reg;
  Counter& c = reg.GetCounter("cache.hits");
  c.Inc(4);

  // Same name, different kind: the caller gets a writable scratch gauge
  // instead of a crash or a corrupted counter.
  Gauge& g = reg.GetGauge("cache.hits");
  g.Set(9.0);
  EXPECT_DOUBLE_EQ(g.value(), 9.0);
  EXPECT_EQ(reg.name_collisions(), 1u);
  EXPECT_EQ(c.value(), 4u);  // original counter untouched
  EXPECT_EQ(reg.size(), 1u);  // scratch metric not registered

  // Snapshot keeps the original registration only.
  MetricSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.entries.size(), 1u);
  EXPECT_EQ(snap.entries[0].kind, MetricSnapshot::Kind::kCounter);
  EXPECT_DOUBLE_EQ(snap.entries[0].value, 4.0);
}

TEST(MetricRegistryTest, SnapshotSortedAndFindable) {
  MetricRegistry reg;
  reg.GetCounter("b.second").Inc(2);
  reg.GetCounter("a.first").Inc(1);
  reg.GetGauge("c.third").Set(3.0);

  MetricSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.entries.size(), 3u);
  EXPECT_EQ(snap.entries[0].name, "a.first");
  EXPECT_EQ(snap.entries[1].name, "b.second");
  EXPECT_EQ(snap.entries[2].name, "c.third");

  const MetricSnapshot::Entry* e = snap.Find("b.second");
  ASSERT_NE(e, nullptr);
  EXPECT_DOUBLE_EQ(e->value, 2.0);
  EXPECT_EQ(snap.Find("no.such.metric"), nullptr);
}

TEST(MetricRegistryTest, HistogramSnapshotSummarizes) {
  MetricRegistry reg;
  ShardedHistogram& h = reg.GetHistogram("cache.latency.miss_us");
  for (int i = 1; i <= 100; ++i) h.Add(static_cast<double>(i) * 10.0);

  MetricSnapshot snap = reg.Snapshot();
  const MetricSnapshot::Entry* e = snap.Find("cache.latency.miss_us");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kind, MetricSnapshot::Kind::kHistogram);
  EXPECT_EQ(e->count, 100u);
  EXPECT_NEAR(e->mean, 505.0, 1e-9);
  EXPECT_GT(e->p99, e->p50);
  EXPECT_GE(e->p999, e->p99);
  EXPECT_DOUBLE_EQ(e->max, 1000.0);
}

TEST(MetricRegistryTest, JsonExportShape) {
  MetricRegistry reg;
  reg.GetCounter("osd.reads").Inc(3);
  reg.GetGauge("flash.devices").Set(5.0);
  reg.GetHistogram("cache.latency.hit_us").Add(42.0);

  std::string json = reg.Snapshot().ToJson();
  EXPECT_NE(json.find("\"counters\":{\"osd.reads\":3}"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"gauges\":{\"flash.devices\":5}"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"cache.latency.hit_us\":{\"count\":1"),
            std::string::npos)
      << json;
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(MetricRegistryTest, NonFiniteGaugeStaysValidJson) {
  // An unbounded classifier threshold sets a gauge to +inf; JSON has no
  // literal for that, so the exporter must render null, not "inf".
  MetricRegistry reg;
  reg.GetGauge("cache.h_hot").Set(std::numeric_limits<double>::infinity());
  std::string json = reg.Snapshot().ToJson();
  EXPECT_NE(json.find("\"cache.h_hot\":null"), std::string::npos) << json;
  EXPECT_EQ(json.find("inf"), std::string::npos) << json;
}

TEST(MetricRegistryTest, CsvExportShape) {
  MetricRegistry reg;
  reg.GetCounter("osd.reads").Inc(3);
  reg.GetHistogram("cache.latency.hit_us").Add(42.0);

  std::string csv = reg.Snapshot().ToCsv();
  EXPECT_EQ(csv.rfind("kind,name,value,count,mean,p50,p99,p999,max,sum\n", 0),
            0u)
      << csv;
  EXPECT_NE(csv.find("counter,osd.reads,3"), std::string::npos) << csv;
  EXPECT_NE(csv.find("histogram,cache.latency.hit_us,"), std::string::npos)
      << csv;
}

TEST(MetricRegistryTest, ResetZeroesButKeepsRegistrations) {
  MetricRegistry reg;
  Counter& c = reg.GetCounter("osd.reads");
  Gauge& g = reg.GetGauge("flash.devices");
  ShardedHistogram& h = reg.GetHistogram("cache.latency.hit_us");
  c.Inc(3);
  g.Set(5.0);
  h.Add(42.0);

  reg.Reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(reg.size(), 3u);
  EXPECT_EQ(&c, &reg.GetCounter("osd.reads"));  // addresses stable
}

TEST(MetricRegistryTest, CsvEscapesDelimitersInNames) {
  // Metric names are caller-chosen strings; one with a comma, quote, or
  // newline must not shift the CSV columns of every row after it.
  MetricRegistry reg;
  reg.GetCounter("plain.reads").Inc(7);
  reg.GetCounter("weird,name").Inc(1);
  reg.GetCounter("say \"what\"").Inc(2);
  reg.GetGauge("multi\nline").Set(3.0);
  MetricSnapshot snap = reg.Snapshot();
  std::string csv = snap.ToCsv();

  EXPECT_NE(csv.find("counter,plain.reads,7"), std::string::npos);
  // RFC 4180: quote the field, double embedded quotes.
  EXPECT_NE(csv.find("counter,\"weird,name\",1"), std::string::npos);
  EXPECT_NE(csv.find("counter,\"say \"\"what\"\"\",2"), std::string::npos);
  EXPECT_NE(csv.find("gauge,\"multi\nline\",3"), std::string::npos);

  // Every unquoted line still has exactly 8 commas (9 columns).
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t eol = csv.find('\n', pos);
    std::string line = csv.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.find('"') != std::string::npos) continue;  // quoted: multi-line
    EXPECT_EQ(std::count(line.begin(), line.end(), ','), 9) << line;
  }
}

TEST(MetricRegistryTest, DeviceCountersSurviveSpareReplacement) {
  // A spare swapped into an array position must keep reporting under the
  // same metric names (counters are position-lifetime, not device-lifetime)
  // — including the FTL, which Replace() recreates.
  MetricRegistry reg;
  FlashDeviceConfig cfg;
  cfg.capacity_bytes = 1 << 20;
  cfg.model_ftl = true;
  FlashDevice dev(cfg);
  dev.AttachTelemetry(reg, "flash.dev0");

  auto slot = dev.AllocateSlot(4096);
  ASSERT_TRUE(slot.ok());
  std::vector<uint8_t> payload(4096, 0xAB);
  ASSERT_TRUE(dev.WriteSlot(*slot, payload).ok());
  uint64_t writes_before = reg.GetCounter("flash.dev0.writes").value();
  EXPECT_GT(writes_before, 0u);

  dev.Fail();
  dev.Replace();

  // Same registry entries, still wired to the fresh device + FTL.
  auto slot2 = dev.AllocateSlot(4096);
  ASSERT_TRUE(slot2.ok());
  ASSERT_TRUE(dev.WriteSlot(*slot2, payload).ok());
  EXPECT_GT(reg.GetCounter("flash.dev0.writes").value(), writes_before);
  EXPECT_GT(reg.GetCounter("flash.dev0.ftl.host_pages_written").value(), 0u);
  EXPECT_EQ(reg.name_collisions(), 0u);
}

TEST(MetricRegistryTest, SnapshotExportsHistogramSum) {
  MetricRegistry reg;
  ShardedHistogram& h = reg.GetHistogram("server.latency.read_us");
  h.Add(10.0);
  h.Add(30.0);

  MetricSnapshot snap = reg.Snapshot();
  const MetricSnapshot::Entry* e = snap.Find("server.latency.read_us");
  ASSERT_NE(e, nullptr);
  EXPECT_DOUBLE_EQ(e->sum, 40.0);
  EXPECT_NE(snap.ToJson().find("\"sum\":40"), std::string::npos);
  EXPECT_NE(snap.ToCsv().find(",40\n"), std::string::npos);
}

TEST(MetricRegistryTest, ShardedHistogramMergesPlainHistogram) {
  // The load generator's rollup path: per-worker plain histograms merged
  // into one registry histogram. Percentiles must survive the trip — the
  // merge has to carry buckets, not just moments.
  Histogram worker_a;
  Histogram worker_b;
  for (int i = 1; i <= 50; ++i) worker_a.Add(10.0);
  for (int i = 1; i <= 50; ++i) worker_b.Add(1000.0);

  MetricRegistry reg;
  ShardedHistogram& h = reg.GetHistogram("loadgen.latency.all_us");
  h.Merge(worker_a);
  h.Merge(worker_b);

  Histogram folded = h.Merged();
  EXPECT_EQ(folded.count(), 100u);
  EXPECT_DOUBLE_EQ(folded.sum(), 50.0 * 10.0 + 50.0 * 1000.0);
  EXPECT_DOUBLE_EQ(folded.max(), 1000.0);
  EXPECT_LT(folded.Percentile(0.25), 20.0);   // low half near 10
  EXPECT_GT(folded.Percentile(0.75), 800.0);  // high half near 1000
}

// --- Concurrency: the registry's core thread-safety contract. Run under
// TSan (the dedicated CI job builds these tests with -fsanitize=thread);
// the exactness assertions below catch lost updates even without it.

TEST(MetricRegistryTest, ConcurrentCountersAreExact) {
  MetricRegistry reg;
  Counter& c = reg.GetCounter("server.requests");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100'000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(MetricRegistryTest, ConcurrentHistogramObservationsAreExact) {
  MetricRegistry reg;
  ShardedHistogram& h = reg.GetHistogram("server.latency.read_us");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20'000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        h.Add(static_cast<double>((t + 1) * 100));
      }
    });
  }
  for (auto& t : threads) t.join();

  Histogram folded = h.Merged();
  EXPECT_EQ(folded.count(), kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(folded.max(), 800.0);
  // Every sample landed in a bucket: the bucket total matches the count.
  uint64_t bucketed = 0;
  for (int b = 0; b < Histogram::kBuckets; ++b) {
    bucketed += folded.bucket_count(b);
  }
  EXPECT_EQ(bucketed, kThreads * kPerThread);
}

TEST(MetricRegistryTest, SnapshotWhileWritingIsMonotoneAndSane) {
  // Readers must never perturb writers or observe garbage: counters in a
  // mid-flight snapshot are between 0 and the final total and never
  // decrease across successive snapshots.
  MetricRegistry reg;
  Counter& c = reg.GetCounter("server.requests");
  ShardedHistogram& h = reg.GetHistogram("server.latency.read_us");
  constexpr int kWriters = 4;
  constexpr uint64_t kPerThread = 50'000;
  std::atomic<bool> done{false};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        c.Inc();
        h.Add(50.0);
      }
    });
  }
  std::thread reader([&] {
    double prev = 0.0;
    while (!done.load(std::memory_order_acquire)) {
      MetricSnapshot snap = reg.Snapshot();
      const MetricSnapshot::Entry* e = snap.Find("server.requests");
      ASSERT_NE(e, nullptr);
      EXPECT_GE(e->value, prev);
      EXPECT_LE(e->value, static_cast<double>(kWriters * kPerThread));
      prev = e->value;
      const MetricSnapshot::Entry* lh = snap.Find("server.latency.read_us");
      ASSERT_NE(lh, nullptr);
      EXPECT_LE(lh->count, kWriters * kPerThread);
    }
  });
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(c.value(), kWriters * kPerThread);
  EXPECT_EQ(h.count(), kWriters * kPerThread);
}

TEST(MetricRegistryTest, ConcurrentRegistrationReturnsStableObjects) {
  // Many threads race to register overlapping names; every thread must get
  // the same object per name and no update may be lost.
  MetricRegistry reg;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < 100; ++i) {
        reg.GetCounter("shared.counter." + std::to_string(i % 10)).Inc();
        reg.GetHistogram("shared.hist." + std::to_string(i % 10)).Add(1.0);
      }
    });
  }
  for (auto& t : threads) t.join();

  uint64_t total = 0;
  for (int i = 0; i < 10; ++i) {
    total += reg.GetCounter("shared.counter." + std::to_string(i)).value();
  }
  EXPECT_EQ(total, kThreads * 100u);
  EXPECT_EQ(reg.name_collisions(), 0u);
  EXPECT_EQ(reg.size(), 20u);
}

}  // namespace
}  // namespace reo
