// Loopback integration tests for the network serving layer: a real
// OsdServer on an ephemeral port, a SocketInitiator doing OSD round
// trips over TCP, graceful drain with pipelined in-flight requests, and
// wire-corruption accounting. Plus unit coverage for the frame codec
// and the timer wheel, which the sockets above exercise only indirectly.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <unordered_map>

#include "osd/osd_target.h"
#include "osd/transport.h"
#include <sys/uio.h>

#include "server/admin_protocol.h"
#include "server/event_loop.h"
#include "server/frame.h"
#include "server/frame_queue.h"
#include "server/osd_server.h"
#include "server/socket_initiator.h"
#include "telemetry/json_scan.h"
#include "telemetry/metric_registry.h"
#include "telemetry/time_series.h"
#include "trace/event_log.h"
#include "trace/tracer.h"

namespace reo {
namespace {

/// Payload-preserving data plane: enough storage semantics to verify
/// byte-exact round trips without dragging in the flash stack.
class MapDataPlane final : public DataPlane {
 public:
  Result<DataPlaneIo> WriteObject(ObjectId id, std::span<const uint8_t> payload,
                                  uint64_t, uint8_t, SimTime now) override {
    data_[id].assign(payload.begin(), payload.end());
    return DataPlaneIo{.complete = now};
  }
  Result<DataPlaneIo> ReadObject(ObjectId id, SimTime now) override {
    auto it = data_.find(id);
    if (it == data_.end()) return Status{ErrorCode::kNotFound, "no data"};
    DataPlaneIo io;
    io.complete = now;
    io.payload.assign(it->second.begin(), it->second.end());
    return io;
  }
  Status RemoveObject(ObjectId id) override {
    return data_.erase(id) ? Status::Ok()
                           : Status{ErrorCode::kNotFound, "no data"};
  }
  Status SetObjectClass(ObjectId, uint8_t, SimTime) override {
    return Status::Ok();
  }
  ObjectHealth Health(ObjectId id) const override {
    return data_.contains(id) ? ObjectHealth::kIntact : ObjectHealth::kAbsent;
  }
  bool recovery_active() const override { return false; }
  bool HasSpaceFor(uint64_t, uint8_t) const override { return true; }

 private:
  std::unordered_map<ObjectId, std::vector<uint8_t>, ObjectIdHash> data_;
};

constexpr ObjectId kTestObject{kFirstUserId, kFirstUserId + 0x2000};

OsdCommand FormatCmd() {
  OsdCommand c;
  c.op = OsdOp::kFormat;
  c.capacity_bytes = 1 << 20;
  return c;
}

/// Server + loop thread + client, torn down in order.
class ServerTest : public ::testing::Test {
 protected:
  void StartServer(OsdServerConfig cfg = {}) {
    server_ = std::make_unique<OsdServer>(target_, cfg);
    server_->AttachTelemetry(telemetry_);
    server_->AttachEvents(events_);
    ASSERT_TRUE(server_->Listen().ok());
    ASSERT_GT(server_->port(), 0);
    loop_thread_ = std::thread([this] { server_->Run(); });
  }

  /// Full observability wiring: metrics + admin plane + every-request
  /// tracing into the per-stage histograms (sample_every = 1, so the
  /// attribution-equality assertions are exact, not statistical).
  void StartAdminServer(OsdServerConfig cfg = {}) {
    server_ = std::make_unique<OsdServer>(target_, cfg);
    server_->AttachTelemetry(telemetry_);
    server_->AttachEvents(events_);
    tracer_.AttachStageMetrics(telemetry_);
    target_.AttachTracing(tracer_);
    server_->AttachTracing(tracer_);
    TrackServingDefaults(telemetry_, series_, /*num_devices=*/0);
    server_->AttachAdmin(&telemetry_, &series_);
    ASSERT_TRUE(server_->Listen().ok());
    ASSERT_GT(server_->port(), 0);
    loop_thread_ = std::thread([this] { server_->Run(); });
  }

  void DrainAndJoin() {
    if (!server_ || !loop_thread_.joinable()) return;
    server_->RequestDrain();
    loop_thread_.join();
  }

  void TearDown() override { DrainAndJoin(); }

  MapDataPlane plane_;
  OsdTarget target_{plane_};
  MetricRegistry telemetry_;
  EventLog events_;
  Tracer tracer_{TracerConfig{.sample_every = 1}};
  TimeSeriesRing series_{
      TimeSeriesConfig{.window_ns = 50'000'000, .capacity = 64}};
  std::unique_ptr<OsdServer> server_;
  std::thread loop_thread_;
};

TEST_F(ServerTest, CreateWriteReadRemoveRoundTrip) {
  StartServer();
  SocketInitiator client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());

  ASSERT_TRUE(client.Roundtrip(FormatCmd()).ok());

  OsdCommand create;
  create.op = OsdOp::kCreate;
  create.id = kTestObject;
  create.logical_size = 4096;
  ASSERT_TRUE(client.Roundtrip(create).ok());

  std::vector<uint8_t> payload(4096);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i * 131);
  }
  OsdCommand write;
  write.op = OsdOp::kWrite;
  write.id = kTestObject;
  write.logical_size = payload.size();
  write.data = payload;
  ASSERT_TRUE(client.Roundtrip(write).ok());

  OsdCommand read;
  read.op = OsdOp::kRead;
  read.id = kTestObject;
  OsdResponse got = client.Roundtrip(read);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.data, payload);

  OsdCommand remove;
  remove.op = OsdOp::kRemove;
  remove.id = kTestObject;
  ASSERT_TRUE(client.Roundtrip(remove).ok());
  EXPECT_FALSE(client.Roundtrip(read).ok());  // gone

  // The wire stayed clean in both directions.
  EXPECT_EQ(client.stats().crc_errors, 0u);
  EXPECT_EQ(client.stats().frame_errors, 0u);
  EXPECT_EQ(client.stats().decode_errors, 0u);
  client.Close();
  DrainAndJoin();
  EXPECT_EQ(server_->stats().crc_errors, 0u);
  EXPECT_EQ(server_->stats().frame_errors, 0u);
  EXPECT_EQ(server_->stats().decode_errors, 0u);
  EXPECT_EQ(server_->stats().requests, 6u);
  EXPECT_EQ(telemetry_.Snapshot().Find("server.requests")->value, 6.0);
}

TEST_F(ServerTest, PipelinedRequestsAllAnswerInOrder) {
  StartServer();
  SocketInitiator client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(client.Roundtrip(FormatCmd()).ok());

  // Queue N creates without reading a single response.
  constexpr int kN = 32;
  for (int i = 0; i < kN; ++i) {
    OsdCommand create;
    create.op = OsdOp::kCreate;
    create.id = ObjectId{kFirstUserId, kTestObject.oid + 1 + i};
    create.logical_size = 100;
    ASSERT_TRUE(client.Send(create).ok());
  }
  for (int i = 0; i < kN; ++i) {
    auto resp = client.Receive();
    ASSERT_TRUE(resp.ok()) << "response " << i;
    EXPECT_TRUE(resp->ok()) << "response " << i;
  }
}

TEST_F(ServerTest, GracefulDrainCompletesInflightRequests) {
  StartServer();
  SocketInitiator client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(client.Roundtrip(FormatCmd()).ok());

  // Pipeline a batch; on loopback send() lands the bytes in the server's
  // receive buffer synchronously, so all of these are in-flight when the
  // drain request arrives.
  constexpr int kN = 16;
  for (int i = 0; i < kN; ++i) {
    OsdCommand create;
    create.op = OsdOp::kCreate;
    create.id = ObjectId{kFirstUserId, kTestObject.oid + 100 + i};
    create.logical_size = 64;
    ASSERT_TRUE(client.Send(create).ok());
  }
  server_->RequestDrain();

  // Every in-flight request still gets a response...
  for (int i = 0; i < kN; ++i) {
    auto resp = client.Receive();
    ASSERT_TRUE(resp.ok()) << "in-flight response " << i << ": "
                           << resp.status().to_string();
    EXPECT_TRUE(resp->ok());
  }
  // ...then the server closes the connection.
  auto after = client.Receive();
  EXPECT_FALSE(after.ok());

  loop_thread_.join();
  EXPECT_EQ(server_->stats().requests, 1u + kN);
  EXPECT_EQ(server_->stats().crc_errors, 0u);
  // The drain milestones made it into the event log.
  bool saw_drain = false, saw_drained = false;
  for (const auto& ev : events_.events()) {
    if (ev.category == "server.drain") saw_drain = true;
    if (ev.category == "server.drained") saw_drained = true;
  }
  EXPECT_TRUE(saw_drain);
  EXPECT_TRUE(saw_drained);
}

TEST_F(ServerTest, CrcCorruptionIsCountedLoggedAndDropsConnection) {
  StartServer();

  // Raw socket: SocketInitiator would never send a bad CRC.
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_->port());
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  std::vector<uint8_t> frame = EncodeFrame(EncodeCommand(FormatCmd()));
  frame[kFrameHeaderBytes] ^= 0xFF;  // corrupt the first payload byte
  ASSERT_EQ(send(fd, frame.data(), frame.size(), 0),
            static_cast<ssize_t>(frame.size()));

  // The server must close the connection (recv sees EOF, not a response).
  uint8_t buf[64];
  ASSERT_EQ(recv(fd, buf, sizeof(buf), 0), 0);
  close(fd);

  DrainAndJoin();
  EXPECT_EQ(server_->stats().crc_errors, 1u);
  EXPECT_EQ(server_->stats().requests, 0u);
  EXPECT_EQ(telemetry_.Snapshot().Find("server.crc_errors")->value, 1.0);
  bool saw_corruption = false;
  for (const auto& ev : events_.events()) {
    if (ev.category == "server.wire_corruption") {
      saw_corruption = true;
      EXPECT_EQ(ev.Field("kind"), "crc_mismatch");
    }
  }
  EXPECT_TRUE(saw_corruption);
}

TEST_F(ServerTest, GarbagePayloadGetsErrorResponseAndConnectionSurvives) {
  StartServer();
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_->port());
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  // A perfectly framed payload that is not an OSD command.
  std::vector<uint8_t> junk = {0xde, 0xad, 0xbe, 0xef};
  std::vector<uint8_t> frame = EncodeFrame(junk);
  ASSERT_EQ(send(fd, frame.data(), frame.size(), 0),
            static_cast<ssize_t>(frame.size()));

  // The server answers with a sense-kFail response instead of dropping us.
  FrameDecoder decoder;
  std::vector<uint8_t> payload;
  for (;;) {
    FrameStatus st = decoder.Next(&payload);
    if (st == FrameStatus::kFrame) break;
    ASSERT_EQ(st, FrameStatus::kNeedMore);
    uint8_t buf[512];
    ssize_t n = recv(fd, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0);
    decoder.Feed({buf, static_cast<size_t>(n)});
  }
  auto resp = DecodeResponse(payload);
  ASSERT_TRUE(resp.ok());
  EXPECT_FALSE(resp->ok());
  close(fd);

  DrainAndJoin();
  EXPECT_EQ(server_->stats().decode_errors, 1u);
  EXPECT_EQ(server_->stats().crc_errors, 0u);
}

// --- In-band admin plane -----------------------------------------------------

TEST_F(ServerTest, AdminCommandsAnswerDuringLiveTraffic) {
  StartAdminServer();
  SocketInitiator client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(client.Roundtrip(FormatCmd()).ok());

  // Live data traffic interleaved with admin polls on the same socket.
  constexpr int kOps = 4;
  for (int i = 0; i < kOps; ++i) {
    OsdCommand create;
    create.op = OsdOp::kCreate;
    create.id = ObjectId{kFirstUserId, kTestObject.oid + i};
    create.logical_size = 4;
    ASSERT_TRUE(client.Roundtrip(create).ok());
    OsdCommand write;
    write.op = OsdOp::kWrite;
    write.id = create.id;
    write.data = {1, 2, 3, 4};
    write.logical_size = 4;
    ASSERT_TRUE(client.Roundtrip(write).ok());
    OsdCommand read;
    read.op = OsdOp::kRead;
    read.id = write.id;
    ASSERT_TRUE(client.Roundtrip(read).ok());
  }
  // format + creates + writes + reads
  constexpr uint64_t kDataRequests = 1 + 3 * kOps;

  auto health = client.AdminRoundtrip(AdminOp::kHealth);
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->status, 0);
  auto hdoc = JsonDoc::Parse(health->json);
  ASSERT_TRUE(hdoc.has_value());
  EXPECT_EQ(hdoc->str(hdoc->member(hdoc->root(), "schema")), "reo.health.v1");
  EXPECT_EQ(hdoc->str(hdoc->member(hdoc->root(), "status")), "ok");
  EXPECT_EQ(hdoc->number(hdoc->member(hdoc->root(), "requests")),
            static_cast<double>(kDataRequests));

  auto stats = client.AdminRoundtrip(AdminOp::kStats);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->status, 0);
  auto sdoc = JsonDoc::Parse(stats->json);
  ASSERT_TRUE(sdoc.has_value());
  // Admin polls must not count as data requests (no skewed ratios).
  EXPECT_EQ(sdoc->number(sdoc->Find({"counters", "server.requests"})),
            static_cast<double>(kDataRequests));
  EXPECT_GT(sdoc->number(
                sdoc->Find({"histograms", "server.latency.read_us", "count"})),
            0.0);

  // Let at least one 50 ms series window close under the loop's roll
  // timer, then ask for the newest windows.
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  auto series = client.AdminRoundtrip(AdminOp::kSeries, 8);
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series->status, 0);
  auto rdoc = JsonDoc::Parse(series->json);
  ASSERT_TRUE(rdoc.has_value());
  EXPECT_EQ(rdoc->str(rdoc->member(rdoc->root(), "schema")), "reo.series.v1");
  EXPECT_GE(rdoc->number(rdoc->member(rdoc->root(), "windows")), 1.0);
  int col = rdoc->Find({"series", "server.requests"});
  ASSERT_TRUE(rdoc->is(col, JsonDoc::Type::kArray));
  // All the data requests happened before the first poll, so the windows
  // seen here sum to at most the total (catch-up puts them in window 0,
  // which may already have rotated out of the newest 8).
  double sum = 0;
  for (double v : rdoc->NumberArray(col)) sum += v;
  EXPECT_LE(sum, static_cast<double>(kDataRequests));

  auto ev = client.AdminRoundtrip(AdminOp::kEvents, 10);
  ASSERT_TRUE(ev.ok());
  EXPECT_EQ(ev->status, 0);
  auto edoc = JsonDoc::Parse(ev->json);
  ASSERT_TRUE(edoc.has_value());
  EXPECT_EQ(edoc->str(edoc->member(edoc->root(), "schema")), "reo.events.v1");

  client.Close();
  DrainAndJoin();
  EXPECT_EQ(server_->stats().admin_requests, 4u);
  EXPECT_EQ(server_->stats().admin_errors, 0u);
  EXPECT_EQ(server_->stats().requests, kDataRequests);
  EXPECT_EQ(client.stats().admin_commands, 4u);
}

TEST_F(ServerTest, MalformedAdminFrameAnswersErrorAndConnectionSurvives) {
  StartAdminServer();
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_->port());
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  auto read_admin_response = [&](int sock) -> Result<AdminResponse> {
    FrameDecoder decoder;
    std::vector<uint8_t> payload;
    for (;;) {
      FrameStatus st = decoder.Next(&payload);
      if (st == FrameStatus::kFrame) break;
      if (st != FrameStatus::kNeedMore) {
        return Status{ErrorCode::kCorrupted, "framing lost"};
      }
      uint8_t buf[4096];
      ssize_t n = recv(sock, buf, sizeof(buf), 0);
      if (n <= 0) return Status{ErrorCode::kUnavailable, "closed"};
      decoder.Feed({buf, static_cast<size_t>(n)});
    }
    return DecodeAdminResponse(payload);
  };

  // Admin magic with a nonzero reserved byte: the strict decoder rejects
  // it, and the server must answer in-band instead of dropping us.
  std::vector<uint8_t> bad =
      EncodeAdminCommand(AdminCommand{AdminOp::kHealth, 0});
  bad.back() = 0xEE;
  std::vector<uint8_t> frame = EncodeFrame(bad);
  ASSERT_EQ(send(fd, frame.data(), frame.size(), 0),
            static_cast<ssize_t>(frame.size()));
  auto err = read_admin_response(fd);
  ASSERT_TRUE(err.ok());
  EXPECT_NE(err->status, 0);
  EXPECT_NE(err->json.find("error"), std::string::npos);

  // The connection survived: a valid HEALTH on the same socket answers.
  frame = EncodeFrame(EncodeAdminCommand(AdminCommand{AdminOp::kHealth, 0}));
  ASSERT_EQ(send(fd, frame.data(), frame.size(), 0),
            static_cast<ssize_t>(frame.size()));
  auto ok = read_admin_response(fd);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->status, 0);
  close(fd);

  DrainAndJoin();
  EXPECT_EQ(server_->stats().admin_requests, 2u);
  EXPECT_EQ(server_->stats().admin_errors, 1u);
  EXPECT_EQ(server_->stats().requests, 0u);  // admin never counts as data
  bool saw_admin_error = false;
  for (const auto& e : events_.events()) {
    if (e.category == "server.admin_error") saw_admin_error = true;
  }
  EXPECT_TRUE(saw_admin_error);
}

// The attribution invariant the telemetry plane promises: with
// sample_every = 1 the transport-stage span histogram observes the same
// two clock stamps as the end-to-end service-latency histograms, so the
// sums and counts match exactly — not statistically.
TEST_F(ServerTest, StageLatencyAttributionMatchesEndToEnd) {
  StartAdminServer();
  SocketInitiator client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(client.Roundtrip(FormatCmd()).ok());
  constexpr int kOps = 50;
  for (int i = 0; i < kOps; ++i) {
    OsdCommand create;
    create.op = OsdOp::kCreate;
    create.id = ObjectId{kFirstUserId, kTestObject.oid + 500 + i};
    create.logical_size = 256;
    ASSERT_TRUE(client.Roundtrip(create).ok());
    OsdCommand write;
    write.op = OsdOp::kWrite;
    write.id = create.id;
    write.data = std::vector<uint8_t>(256, static_cast<uint8_t>(i));
    write.logical_size = 256;
    ASSERT_TRUE(client.Roundtrip(write).ok());
    OsdCommand read;
    read.op = OsdOp::kRead;
    read.id = write.id;
    ASSERT_TRUE(client.Roundtrip(read).ok());
  }
  client.Close();
  DrainAndJoin();

  MetricSnapshot snap = telemetry_.Snapshot();
  const MetricSnapshot::Entry* transport =
      snap.Find("stage.transport.span_us");
  const MetricSnapshot::Entry* lat_read = snap.Find("server.latency.read_us");
  const MetricSnapshot::Entry* lat_write =
      snap.Find("server.latency.write_us");
  const MetricSnapshot::Entry* lat_other =
      snap.Find("server.latency.other_us");
  ASSERT_NE(transport, nullptr);
  ASSERT_NE(lat_read, nullptr);
  ASSERT_NE(lat_write, nullptr);
  ASSERT_NE(lat_other, nullptr);

  uint64_t end_to_end_count =
      lat_read->count + lat_write->count + lat_other->count;
  EXPECT_EQ(end_to_end_count, 1u + 3u * kOps);
  EXPECT_EQ(transport->count, end_to_end_count);
  double end_to_end_sum = lat_read->sum + lat_write->sum + lat_other->sum;
  EXPECT_NEAR(transport->sum, end_to_end_sum,
              1e-9 * std::max(1.0, end_to_end_sum));

  // The nested stage (osd_target spans under the transport root) was
  // attributed too, once per data request.
  const MetricSnapshot::Entry* target_stage =
      snap.Find("stage.osd_target.span_us");
  ASSERT_NE(target_stage, nullptr);
  EXPECT_EQ(target_stage->count, end_to_end_count);
}

TEST_F(ServerTest, IdleConnectionsAreReaped) {
  OsdServerConfig cfg;
  cfg.idle_timeout_ms = 50;
  StartServer(cfg);
  SocketInitiator client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(client.Roundtrip(FormatCmd()).ok());
  // Stop talking; the server should close us from its side.
  auto resp = client.Receive();
  EXPECT_FALSE(resp.ok());
  DrainAndJoin();
  EXPECT_EQ(server_->stats().closed, 1u);
}

// --- Partial-failure tolerance (connect/receive timeouts, reconnect) ---------

/// A listener that accepts connections but never answers: the shape of a
/// hung (fail-slow) server from the client's point of view.
class SilentListener {
 public:
  SilentListener() {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0 &&
        listen(fd_, 4) == 0) {
      socklen_t len = sizeof(addr);
      getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
      port_ = ntohs(addr.sin_port);
    }
  }
  ~SilentListener() {
    if (fd_ >= 0) close(fd_);
  }
  uint16_t port() const { return port_; }

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

TEST(InitiatorFaultTest, ReceiveTimeoutFailsFastOnSilentServer) {
  SilentListener server;
  ASSERT_GT(server.port(), 0);

  SocketInitiatorConfig cfg;
  cfg.receive_timeout_ms = 100;
  SocketInitiator client(cfg);
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  OsdCommand read;
  read.op = OsdOp::kRead;
  read.id = kTestObject;
  OsdResponse resp = client.Roundtrip(read);
  EXPECT_FALSE(resp.ok());
  EXPECT_EQ(resp.sense, SenseCode::kFail);
  EXPECT_GE(client.stats().timeouts, 1u);
  // The deadline expiry drops the session (its state is unknown).
  EXPECT_FALSE(client.connected());
}

TEST(InitiatorFaultTest, IdempotentReadReconnectsAfterMidFlightKill) {
  // A server that dies between request and response: connection 1 is cut
  // after the request arrives; connection 2 answers. Only the initiator's
  // reconnect-retry path makes this invisible to the caller.
  int lfd = socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(listen(lfd, 4), 0);
  socklen_t alen = sizeof(addr);
  ASSERT_EQ(getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &alen), 0);
  uint16_t port = ntohs(addr.sin_port);

  std::thread fake_server([lfd] {
    // Connection 1: read a little of the request, then kill it.
    int c1 = accept(lfd, nullptr, nullptr);
    uint8_t buf[256];
    (void)recv(c1, buf, sizeof(buf), 0);
    close(c1);
    // Connection 2: answer the resent read with a valid response frame.
    int c2 = accept(lfd, nullptr, nullptr);
    (void)recv(c2, buf, sizeof(buf), 0);
    OsdResponse ok_resp;
    ok_resp.sense = SenseCode::kOk;
    ok_resp.data = {1, 2, 3, 4};
    std::vector<uint8_t> frame = EncodeFrame(EncodeResponse(ok_resp));
    (void)send(c2, frame.data(), frame.size(), MSG_NOSIGNAL);
    close(c2);
  });

  SocketInitiatorConfig cfg;
  cfg.max_retries = 2;
  cfg.retry_backoff_ms = 1;
  SocketInitiator client(cfg);
  ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());

  OsdCommand read;
  read.op = OsdOp::kRead;
  read.id = kTestObject;
  OsdResponse resp = client.Roundtrip(read);
  EXPECT_TRUE(resp.ok());
  EXPECT_EQ(resp.data, (std::vector<uint8_t>{1, 2, 3, 4}));
  EXPECT_EQ(client.stats().reconnects, 1u);

  fake_server.join();
  close(lfd);
}

TEST(InitiatorFaultTest, ReconnectBackoffGrowsWithJitterAndCap) {
  // Mirrors fault/retry.h's bound test: exponential growth, jitter in
  // [0.5x, 1.5x), and — the reconnect-storm guard — a hard cap that
  // holds even at exponents that would overflow every integer width.
  SocketInitiatorConfig cfg;
  cfg.retry_backoff_ms = 20;
  cfg.retry_backoff_max_ms = 2000;
  Pcg32 rng(11, 4);
  for (int trial = 0; trial < 100; ++trial) {
    uint32_t b0 = ReconnectBackoffMs(cfg, 0, rng);
    EXPECT_GE(b0, 10u);   // 20 * 0.5
    EXPECT_LT(b0, 30u);   // 20 * 1.5
    uint32_t b3 = ReconnectBackoffMs(cfg, 3, rng);
    EXPECT_GE(b3, 80u);   // 20 * 2^3 * 0.5
    EXPECT_LT(b3, 240u);  // 20 * 2^3 * 1.5
    // Deep retries saturate at the cap instead of wrapping around to
    // tiny sleeps (2^retry overflows long before max_retries runs out).
    for (uint32_t retry : {8u, 31u, 64u, 1000u}) {
      EXPECT_EQ(ReconnectBackoffMs(cfg, retry, rng), 2000u);
    }
  }
  // Cap disabled (0): still no overflow, the exponent is clamped.
  cfg.retry_backoff_max_ms = 0;
  uint32_t huge = ReconnectBackoffMs(cfg, 1000, rng);
  EXPECT_GT(huge, 0u);
  // A zero base never sleeps, whatever the retry count.
  cfg.retry_backoff_ms = 0;
  EXPECT_EQ(ReconnectBackoffMs(cfg, 5, rng), 0u);
}

TEST(InitiatorFaultTest, WritesAreNeverBlindlyResent) {
  // The same mid-flight kill, but for a WRITE: the command may have been
  // applied before the cut, so Roundtrip must fail instead of replaying.
  int lfd = socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(listen(lfd, 4), 0);
  socklen_t alen = sizeof(addr);
  ASSERT_EQ(getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &alen), 0);
  uint16_t port = ntohs(addr.sin_port);

  std::thread fake_server([lfd] {
    int c1 = accept(lfd, nullptr, nullptr);
    uint8_t buf[256];
    (void)recv(c1, buf, sizeof(buf), 0);
    close(c1);
  });

  SocketInitiatorConfig cfg;
  cfg.max_retries = 2;
  cfg.retry_backoff_ms = 1;
  SocketInitiator client(cfg);
  ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());

  OsdCommand write;
  write.op = OsdOp::kWrite;
  write.id = kTestObject;
  write.data = {9, 9, 9};
  write.logical_size = 3;
  OsdResponse resp = client.Roundtrip(write);
  EXPECT_FALSE(resp.ok());
  EXPECT_EQ(client.stats().reconnects, 0u);

  fake_server.join();
  close(lfd);
}

TEST(InitiatorFaultTest, ConnectTimeoutOnSaturatedBacklog) {
  // A listener with a full accept backlog drops further SYNs (Linux
  // default): from the client's side the connect just hangs, which is
  // exactly what the bounded connect must turn into a fast failure.
  int lfd = socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(listen(lfd, 0), 0);
  socklen_t alen = sizeof(addr);
  ASSERT_EQ(getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &alen), 0);
  uint16_t port = ntohs(addr.sin_port);

  // Saturate the backlog with connections nobody accepts.
  std::vector<int> fillers;
  for (int i = 0; i < 8; ++i) {
    int fd = socket(AF_INET, SOCK_STREAM, 0);
    int flags = fcntl(fd, F_GETFL, 0);
    fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    (void)connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    fillers.push_back(fd);
  }
  usleep(50 * 1000);  // let the queue fill before the probe

  SocketInitiatorConfig cfg;
  cfg.connect_timeout_ms = 150;
  SocketInitiator client(cfg);
  Status st = client.Connect("127.0.0.1", port);
  if (!st.ok()) {
    // The expected path: poll deadline expired (or the kernel refused).
    EXPECT_FALSE(client.connected());
    if (st.code() == ErrorCode::kIoError) {
      EXPECT_GE(client.stats().timeouts, 1u);
    }
  }
  // Kernels with syncookies may still complete the handshake; the test
  // then only proves the bounded path doesn't break a good connect.
  for (int fd : fillers) close(fd);
  close(lfd);
}

// --- Frame codec unit tests --------------------------------------------------

TEST(FrameCodecTest, ByteAtATimeReassembly) {
  std::vector<uint8_t> payload = {1, 2, 3, 4, 5, 6, 7};
  std::vector<uint8_t> wire = EncodeFrame(payload);
  FrameDecoder decoder;
  std::vector<uint8_t> out;
  for (size_t i = 0; i + 1 < wire.size(); ++i) {
    decoder.Feed({&wire[i], 1});
    EXPECT_EQ(decoder.Next(&out), FrameStatus::kNeedMore);
  }
  decoder.Feed({&wire.back(), 1});
  ASSERT_EQ(decoder.Next(&out), FrameStatus::kFrame);
  EXPECT_EQ(out, payload);
  EXPECT_EQ(decoder.Next(&out), FrameStatus::kNeedMore);
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(FrameCodecTest, ManyFramesInOneFeed) {
  std::vector<uint8_t> wire;
  for (uint8_t i = 0; i < 10; ++i) {
    std::vector<uint8_t> payload(i + 1, i);
    AppendFrame(wire, payload);
  }
  FrameDecoder decoder;
  decoder.Feed(wire);
  std::vector<uint8_t> out;
  for (uint8_t i = 0; i < 10; ++i) {
    ASSERT_EQ(decoder.Next(&out), FrameStatus::kFrame);
    EXPECT_EQ(out, std::vector<uint8_t>(i + 1, i));
  }
  EXPECT_EQ(decoder.Next(&out), FrameStatus::kNeedMore);
}

TEST(FrameCodecTest, EmptyPayloadRoundTrips) {
  FrameDecoder decoder;
  decoder.Feed(EncodeFrame({}));
  std::vector<uint8_t> out{9};
  ASSERT_EQ(decoder.Next(&out), FrameStatus::kFrame);
  EXPECT_TRUE(out.empty());
}

TEST(FrameCodecTest, BadMagicPoisonsTheStream) {
  std::vector<uint8_t> wire = EncodeFrame(std::vector<uint8_t>{1, 2, 3});
  wire[0] ^= 0x01;
  FrameDecoder decoder;
  decoder.Feed(wire);
  std::vector<uint8_t> out;
  EXPECT_EQ(decoder.Next(&out), FrameStatus::kBadMagic);
  EXPECT_TRUE(decoder.poisoned());
  // Sticky: feeding a valid frame afterwards cannot resynchronize.
  decoder.Feed(EncodeFrame(std::vector<uint8_t>{4, 5}));
  EXPECT_EQ(decoder.Next(&out), FrameStatus::kBadMagic);
}

TEST(FrameCodecTest, OversizedLengthIsRejectedNotAllocated) {
  FrameDecoder decoder(/*max_payload=*/1024);
  std::vector<uint8_t> header = {0x52, 0x45, 0x4F, 0x46,  // "REOF"
                                 0xFF, 0xFF, 0xFF, 0x7F};
  decoder.Feed(header);
  std::vector<uint8_t> out;
  EXPECT_EQ(decoder.Next(&out), FrameStatus::kOversized);
  EXPECT_TRUE(decoder.poisoned());
}

TEST(FrameCodecTest, CrcMismatchIsPerFrameNotSticky) {
  std::vector<uint8_t> good = {10, 20, 30};
  std::vector<uint8_t> wire = EncodeFrame(good);
  wire[kFrameHeaderBytes + 1] ^= 0x40;
  FrameDecoder decoder;
  decoder.Feed(wire);
  AppendFrame(wire, good);  // second, intact frame
  decoder.Feed({wire.data() + FramedSize(good.size()),
                FramedSize(good.size())});
  std::vector<uint8_t> out;
  EXPECT_EQ(decoder.Next(&out), FrameStatus::kCrcMismatch);
  ASSERT_EQ(decoder.Next(&out), FrameStatus::kFrame);
  EXPECT_EQ(out, good);
}

// Regression for the per-call exact reserve() in AppendFrame: it capped
// capacity at exactly the bytes needed, so every append in a batch
// reallocated and copied the whole buffer (quadratic). With geometric
// growth, N appends may only change capacity O(log N) times.
TEST(FrameCodecTest, BatchAppendReallocatesLogarithmically) {
  constexpr int kFrames = 1000;
  std::vector<uint8_t> payload(100, 0xCD);
  std::vector<uint8_t> wire;
  int capacity_changes = 0;
  size_t cap = wire.capacity();
  for (int i = 0; i < kFrames; ++i) {
    AppendFrame(wire, payload);
    if (wire.capacity() != cap) {
      cap = wire.capacity();
      ++capacity_changes;
    }
  }
  // log2(1000 * 112B) ≈ 17; leave slack for implementation growth factors.
  EXPECT_LE(capacity_changes, 40) << "quadratic append is back";
  // And the bytes are still a valid frame stream.
  FrameDecoder decoder;
  decoder.Feed(wire);
  std::vector<uint8_t> out;
  for (int i = 0; i < kFrames; ++i) {
    ASSERT_EQ(decoder.Next(&out), FrameStatus::kFrame);
    ASSERT_EQ(out, payload);
  }
}

// --- FrameQueue --------------------------------------------------------------

namespace {

// Flattens whatever Gather currently exposes, honoring a byte budget, the
// way DoWrite's sendmsg would consume it.
std::vector<uint8_t> DrainQueue(FrameQueue& q, size_t chunk) {
  std::vector<uint8_t> all;
  while (!q.empty()) {
    struct iovec iov[4];
    size_t n_iov = q.Gather(iov, 4);
    if (n_iov == 0) break;
    size_t took = 0;
    for (size_t i = 0; i < n_iov && took < chunk; ++i) {
      size_t n = std::min(chunk - took, iov[i].iov_len);
      const uint8_t* p = static_cast<const uint8_t*>(iov[i].iov_base);
      all.insert(all.end(), p, p + n);
      took += n;
    }
    q.Consume(took);
  }
  return all;
}

}  // namespace

TEST(FrameQueueTest, GatheredBytesMatchEncodeFrame) {
  FrameMetaPool pool;
  FrameQueue q(pool);
  std::vector<uint8_t> expect;
  for (uint8_t i = 0; i < 7; ++i) {
    std::vector<uint8_t> payload(i * 13 + 1, i);
    AppendFrame(expect, payload);
    q.Push(std::move(payload));
  }
  EXPECT_EQ(q.pending_bytes(), expect.size());
  // Drain in awkward 5-byte slices so Consume repeatedly stops mid-header,
  // mid-payload, and mid-trailer.
  std::vector<uint8_t> got = DrainQueue(q, 5);
  EXPECT_EQ(got, expect);
  EXPECT_EQ(q.pending_bytes(), 0u);
}

TEST(FrameQueueTest, MultiPartPushMatchesFlatFrame) {
  // A head/body/tail push must put the exact bytes of
  // EncodeFrame(head‖body‖tail) on the wire — including the CRC trailer,
  // which is built by seeded continuation across the parts.
  FrameMetaPool pool;
  FrameQueue q(pool);
  std::vector<uint8_t> expect;
  struct Case {
    size_t head, body, tail;
  };
  // Cover empty parts in every position (the 5-span gather skips them).
  const Case cases[] = {{21, 1000, 11}, {0, 64, 0}, {8, 0, 8},
                        {0, 0, 5},      {3, 0, 0},  {0, 17, 9}};
  uint8_t fill = 1;
  for (const Case& c : cases) {
    FramePayload p;
    p.head.assign(c.head, fill++);
    p.body.assign(c.body, fill++);
    p.tail.assign(c.tail, fill++);
    std::vector<uint8_t> flat = p.head;
    flat.insert(flat.end(), p.body.begin(), p.body.end());
    flat.insert(flat.end(), p.tail.begin(), p.tail.end());
    AppendFrame(expect, flat);
    EXPECT_EQ(p.size(), flat.size());
    q.Push(std::move(p));
  }
  EXPECT_EQ(q.pending_bytes(), expect.size());
  // Awkward 7-byte slices stop mid-part and across part boundaries.
  EXPECT_EQ(DrainQueue(q, 7), expect);
  EXPECT_EQ(q.pending_bytes(), 0u);
}

TEST(FrameQueueTest, MetaBlocksAreRecycled) {
  FrameMetaPool pool;
  FrameQueue q(pool);
  for (int round = 0; round < 10; ++round) {
    q.Push(std::vector<uint8_t>(64, 0xAB));
    DrainQueue(q, 1 << 20);
  }
  // One live frame at a time: the pool should have allocated once and
  // served every later Push from the free list.
  EXPECT_EQ(pool.allocated(), 1u);
  EXPECT_EQ(pool.reused(), 9u);
}

// --- Timer wheel unit tests --------------------------------------------------

TEST(TimerWheelTest, FiresInDeadlineOrderAcrossSlots) {
  TimerWheel wheel(/*tick_ms=*/10, /*slots=*/8);
  std::vector<int> fired;
  wheel.Schedule(0, 35, [&] { fired.push_back(3); });
  wheel.Schedule(0, 5, [&] { fired.push_back(1); });
  wheel.Schedule(0, 100, [&] { fired.push_back(4); });  // > one revolution
  wheel.Schedule(0, 20, [&] { fired.push_back(2); });
  EXPECT_EQ(wheel.pending(), 4u);

  wheel.Advance(10);
  EXPECT_EQ(fired, (std::vector<int>{1}));
  wheel.Advance(40);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  wheel.Advance(99);
  EXPECT_EQ(fired.size(), 3u);
  wheel.Advance(101);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(wheel.pending(), 0u);
  EXPECT_EQ(wheel.NextTimeoutMs(101), -1);
}

TEST(TimerWheelTest, CancelPreventsFiring) {
  TimerWheel wheel(10, 8);
  bool fired = false;
  TimerId id = wheel.Schedule(0, 30, [&] { fired = true; });
  wheel.Cancel(id);
  wheel.Advance(1000);
  EXPECT_FALSE(fired);
  wheel.Cancel(id);  // double-cancel is a no-op
}

TEST(TimerWheelTest, CallbackMayScheduleMoreTimers) {
  TimerWheel wheel(10, 8);
  int fired = 0;
  wheel.Schedule(0, 10, [&] {
    ++fired;
    wheel.Schedule(10, 10, [&] { ++fired; });
  });
  wheel.Advance(20);
  wheel.Advance(40);
  EXPECT_EQ(fired, 2);
}

// Regression: a firing callback cancelling other timers that are due in
// the SAME slot (the drain path does exactly this — the drain-timeout
// callback destroys Connections, whose destructors cancel their idle
// timers) must not leave Advance() holding a freed list node.
TEST(TimerWheelTest, CallbackMayCancelOtherDueTimers) {
  TimerWheel wheel(10, 8);
  std::vector<TimerId> victims;
  int cancelled_fired = 0;
  int canceller_fired = 0;
  // All four land in the same slot and are all due at once; the canceller
  // is scheduled last so push_front puts it ahead of its victims.
  for (int i = 0; i < 3; ++i) {
    victims.push_back(
        wheel.Schedule(0, 20, [&] { ++cancelled_fired; }));
  }
  wheel.Schedule(0, 20, [&] {
    ++canceller_fired;
    for (TimerId id : victims) wheel.Cancel(id);
  });
  wheel.Advance(25);
  EXPECT_EQ(canceller_fired, 1);
  EXPECT_EQ(cancelled_fired, 0);
  EXPECT_EQ(wheel.pending(), 0u);
  EXPECT_EQ(wheel.NextTimeoutMs(25), -1);
}

TEST(TimerWheelTest, NextTimeoutTracksEarliestDeadline) {
  TimerWheel wheel(10, 16);
  EXPECT_EQ(wheel.NextTimeoutMs(0), -1);
  wheel.Schedule(0, 70, [] {});
  wheel.Schedule(0, 25, [] {});
  EXPECT_EQ(wheel.NextTimeoutMs(0), 25);
  EXPECT_EQ(wheel.NextTimeoutMs(20), 5);
  EXPECT_EQ(wheel.NextTimeoutMs(30), 0);  // overdue clamps to poll-now
}

}  // namespace
}  // namespace reo
