// OsdInitiator tests: the typed client API over the target, including the
// control-protocol helpers, against a real ReoDataPlane stack.
#include <gtest/gtest.h>

#include <memory>

#include "backend/backend_store.h"
#include "core/data_plane.h"
#include "osd/osd_initiator.h"

namespace reo {
namespace {

constexpr uint64_t kChunk = 1024;

ObjectId Oid(uint64_t n) { return ObjectId{kFirstUserId, 0x20000 + n}; }

struct InitiatorFixture {
  InitiatorFixture() {
    FlashDeviceConfig dev;
    dev.capacity_bytes = 1 << 20;
    array = std::make_unique<FlashArray>(5, dev);
    stripes = std::make_unique<StripeManager>(
        *array,
        StripeManagerConfig{.chunk_logical_bytes = kChunk, .scale_shift = 0});
    plane = std::make_unique<ReoDataPlane>(
        *stripes, RedundancyPolicy({.mode = ProtectionMode::kReo,
                                    .reo_reserve_fraction = 0.3}));
    target = std::make_unique<OsdTarget>(*plane);
    initiator = std::make_unique<OsdInitiator>(*target);
    EXPECT_TRUE(initiator->FormatOsd(5 << 20).ok());
  }

  std::unique_ptr<FlashArray> array;
  std::unique_ptr<StripeManager> stripes;
  std::unique_ptr<ReoDataPlane> plane;
  std::unique_ptr<OsdTarget> target;
  std::unique_ptr<OsdInitiator> initiator;
};

TEST(OsdInitiatorTest, FullObjectLifecycle) {
  InitiatorFixture fx;
  ObjectId id = Oid(1);
  uint64_t logical = 3 * kChunk;
  auto payload = BackendStore::SynthesizePayload(id, 0, fx.stripes->PhysicalSize(logical));

  ASSERT_TRUE(fx.initiator->CreateObject(id, logical, 0).ok());
  ASSERT_TRUE(fx.initiator->WriteObject(id, payload, logical, 0).ok());

  auto read = fx.initiator->ReadObject(id, 0);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.data, payload);
  EXPECT_GT(read.complete, 0u);

  ASSERT_TRUE(fx.initiator->RemoveObject(id, 0).ok());
  EXPECT_EQ(fx.initiator->ReadObject(id, 0).sense, SenseCode::kFail);
}

TEST(OsdInitiatorTest, ClassificationDrivesRedundancy) {
  InitiatorFixture fx;
  ObjectId id = Oid(1);
  uint64_t logical = 3 * kChunk;
  auto payload = BackendStore::SynthesizePayload(id, 0, fx.stripes->PhysicalSize(logical));
  ASSERT_TRUE(fx.initiator->CreateObject(id, logical, 0).ok());

  // Classify before write: class 1 (dirty) -> replicate on write.
  EXPECT_EQ(fx.initiator->SetClassId(id, 1, 0), SenseCode::kOk);
  ASSERT_TRUE(fx.initiator->WriteObject(id, payload, logical, 0).ok());
  EXPECT_EQ(*fx.stripes->LevelOf(id), RedundancyLevel::kReplicate);

  // Reclassify to hot clean -> re-encode to 2-parity.
  EXPECT_EQ(fx.initiator->SetClassId(id, 2, 0), SenseCode::kOk);
  EXPECT_EQ(*fx.stripes->LevelOf(id), RedundancyLevel::kParity2);

  // Cold -> no redundancy.
  EXPECT_EQ(fx.initiator->SetClassId(id, 3, 0), SenseCode::kOk);
  EXPECT_EQ(*fx.stripes->LevelOf(id), RedundancyLevel::kNone);
}

TEST(OsdInitiatorTest, QueriesFollowTableIII) {
  InitiatorFixture fx;
  ObjectId id = Oid(1);
  uint64_t logical = 5 * kChunk;
  auto payload = BackendStore::SynthesizePayload(id, 0, fx.stripes->PhysicalSize(logical));
  ASSERT_TRUE(fx.initiator->CreateObject(id, logical, 0).ok());
  ASSERT_TRUE(fx.initiator->WriteObject(id, payload, logical, 0).ok());

  EXPECT_EQ(fx.initiator->Query(id, false, 0, logical, 0), SenseCode::kOk);
  EXPECT_EQ(fx.initiator->QueryRecoveryState(0), SenseCode::kOk);

  // Kill a device: the cold object is lost -> 0x63; recovery flag shows
  // through the control-object query once the plane raises it.
  ASSERT_TRUE(fx.array->FailDevice(0).ok());
  (void)fx.stripes->OnDeviceFailure(0);
  EXPECT_EQ(fx.initiator->Query(id, false, 0, logical, 0), SenseCode::kCorrupted);
  fx.plane->set_recovery_active(true);
  EXPECT_EQ(fx.initiator->QueryRecoveryState(0), SenseCode::kRecoveryStarts);
}

TEST(OsdInitiatorTest, WriteQueryReportsSpace) {
  InitiatorFixture fx;
  ObjectId id = Oid(1);
  ASSERT_TRUE(fx.initiator->CreateObject(id, kChunk, 0).ok());
  EXPECT_EQ(fx.initiator->Query(id, true, 0, kChunk, 0), SenseCode::kOk);
  // Far beyond the array: 0x64.
  EXPECT_EQ(fx.initiator->Query(id, true, 0, 100 << 20, 0), SenseCode::kCacheFull);
}

TEST(OsdInitiatorTest, AttrRoundTrip) {
  InitiatorFixture fx;
  ObjectId id = Oid(1);
  ASSERT_TRUE(fx.initiator->CreateObject(id, kChunk, 0).ok());
  std::vector<uint8_t> value{9, 8, 7};
  ASSERT_TRUE(fx.initiator->SetAttr(id, kAttrReadFreq, value).ok());
  auto got = fx.initiator->GetAttr(id, kAttrReadFreq);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.attr_value, value);
}

TEST(OsdInitiatorTest, CollectionsAndListing) {
  InitiatorFixture fx;
  ObjectId coll{kFirstUserId, 0x30000};
  ASSERT_TRUE(fx.initiator->CreateCollection(coll).ok());
  auto members = fx.initiator->ListCollection(coll);
  ASSERT_TRUE(members.ok());
  EXPECT_TRUE(members.list.empty());
  ASSERT_TRUE(fx.initiator->RemoveCollection(coll).ok());

  ASSERT_TRUE(fx.initiator->CreateObject(Oid(1), kChunk, 0).ok());
  auto list = fx.initiator->ListObjects(kFirstUserId);
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list.list.size(), 5u);  // 4 reserved + 1
}

TEST(OsdInitiatorTest, StatsTrackTraffic) {
  InitiatorFixture fx;
  ASSERT_TRUE(fx.initiator->CreateObject(Oid(1), kChunk, 0).ok());
  (void)fx.initiator->SetClassId(Oid(1), 3, 0);
  (void)fx.initiator->ReadObject(Oid(9), 0);  // error
  const auto& st = fx.initiator->stats();
  EXPECT_GE(st.commands_sent, 4u);  // format + create + setid + read
  EXPECT_EQ(st.control_writes, 1u);
  EXPECT_GE(st.errors, 1u);
}

TEST(OsdInitiatorTest, ControlLatencyIsCharged) {
  InitiatorFixture fx;
  fx.initiator->set_control_latency(12345);
  EXPECT_EQ(fx.initiator->control_latency(), 12345u);
  ASSERT_TRUE(fx.initiator->CreateObject(Oid(1), kChunk, 0).ok());
  EXPECT_EQ(fx.initiator->SetClassId(Oid(1), 3, 0), SenseCode::kOk);
}

TEST(OsdInitiatorTest, PartitionManagement) {
  InitiatorFixture fx;
  ASSERT_TRUE(fx.initiator->CreatePartition(0x20000).ok());
  EXPECT_EQ(fx.initiator->CreatePartition(0x20000).sense, SenseCode::kFail);
  ObjectId in_new{0x20000, 0x50000};
  ASSERT_TRUE(fx.initiator->CreateObject(in_new, kChunk, 0).ok());
}

}  // namespace
}  // namespace reo
