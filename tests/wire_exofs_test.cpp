// Full-stack integration over the serialized wire: the exofs filesystem
// client talking to the OSD target exclusively through encoded
// command/response bytes on a modeled 10 GbE link — the closest in-repo
// analogue of the paper's real deployment (exofs -> osd-initiator ->
// iSCSI -> osd-target -> flash array).
#include <gtest/gtest.h>

#include <memory>

#include "core/data_plane.h"
#include "osd/exofs.h"
#include "osd/transport.h"

namespace reo {
namespace {

constexpr uint64_t kChunk = 1024;

struct WireFsFixture {
  WireFsFixture() {
    FlashDeviceConfig dev;
    dev.capacity_bytes = 1 << 20;
    array = std::make_unique<FlashArray>(5, dev);
    stripes = std::make_unique<StripeManager>(
        *array,
        StripeManagerConfig{.chunk_logical_bytes = kChunk, .scale_shift = 0});
    plane = std::make_unique<ReoDataPlane>(
        *stripes, RedundancyPolicy({.mode = ProtectionMode::kReo,
                                    .reo_reserve_fraction = 0.3}));
    target = std::make_unique<OsdTarget>(*plane);
    transport = std::make_unique<OsdTransport>(*target);
    initiator = std::make_unique<OsdInitiator>(*target);
    initiator->UseTransport(transport.get());
    fs = std::make_unique<ExofsClient>(
        *initiator, [this](uint64_t l) { return stripes->PhysicalSize(l); });
  }

  std::unique_ptr<FlashArray> array;
  std::unique_ptr<StripeManager> stripes;
  std::unique_ptr<ReoDataPlane> plane;
  std::unique_ptr<OsdTarget> target;
  std::unique_ptr<OsdTransport> transport;
  std::unique_ptr<OsdInitiator> initiator;
  std::unique_ptr<ExofsClient> fs;
};

TEST(WireExofsTest, FilesystemOverSerializedTransport) {
  WireFsFixture fx;
  ASSERT_TRUE(fx.fs->MkFs(5 << 20, 0).ok());
  ASSERT_TRUE(fx.fs->Mkdir("/wire", 0).ok());

  std::string body = "every byte of this file crossed the encoded wire";
  std::vector<uint8_t> payload(body.begin(), body.end());
  ASSERT_TRUE(fx.fs->WriteFile("/wire/f", payload, payload.size(), 0).ok());

  auto read = fx.fs->ReadFile("/wire/f", 0);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, payload);

  // The transport really carried it all: commands plus the payload bytes.
  EXPECT_GT(fx.transport->stats().commands, 6u);
  EXPECT_GT(fx.transport->stats().bytes_sent, payload.size());
  EXPECT_EQ(fx.transport->stats().decode_errors, 0u);

  // Directory listing and unlink also work across the wire.
  auto dir = fx.fs->ReadDir("/wire", 0);
  ASSERT_TRUE(dir.ok());
  EXPECT_EQ(dir->size(), 1u);
  ASSERT_TRUE(fx.fs->Unlink("/wire/f", 0).ok());
  EXPECT_EQ(fx.fs->ReadFile("/wire/f", 0).code(), ErrorCode::kNotFound);
}

TEST(WireExofsTest, RemountOverWireSeesPersistentState) {
  WireFsFixture fx;
  ASSERT_TRUE(fx.fs->MkFs(5 << 20, 0).ok());
  std::vector<uint8_t> payload{1, 2, 3, 4};
  ASSERT_TRUE(fx.fs->WriteFile("/persisted", payload, payload.size(), 0).ok());

  ExofsClient again(*fx.initiator,
                    [&](uint64_t l) { return fx.stripes->PhysicalSize(l); });
  ASSERT_TRUE(again.Mount(0).ok());
  auto read = again.ReadFile("/persisted", 0);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, payload);
}

}  // namespace
}  // namespace reo
