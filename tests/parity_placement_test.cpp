// Parity-placement tests: rotating (paper default) vs age-skewed
// (Differential-RAID-style) placement both preserve fault isolation and
// produce the intended wear distributions.
#include <gtest/gtest.h>

#include <memory>

#include "array/stripe_manager.h"
#include "backend/backend_store.h"
#include "common/rng.h"

namespace reo {
namespace {

constexpr uint64_t kChunk = 1024;

ObjectId Oid(uint64_t n) { return ObjectId{kFirstUserId, 0x20000 + n}; }

struct PlacementFixture {
  explicit PlacementFixture(ParityPlacement placement) {
    FlashDeviceConfig dev;
    dev.capacity_bytes = 1 << 20;
    array = std::make_unique<FlashArray>(5, dev);
    StripeManagerConfig cfg;
    cfg.chunk_logical_bytes = kChunk;
    cfg.scale_shift = 0;
    cfg.parity_placement = placement;
    stripes = std::make_unique<StripeManager>(*array, cfg);
  }

  void Put(uint64_t n, uint64_t logical, RedundancyLevel level) {
    auto payload =
        BackendStore::SynthesizePayload(Oid(n), 0, stripes->PhysicalSize(logical));
    ASSERT_TRUE(stripes->PutObject(Oid(n), payload, logical, level, 0).ok());
  }

  std::unique_ptr<FlashArray> array;
  std::unique_ptr<StripeManager> stripes;
};

class PlacementP : public ::testing::TestWithParam<ParityPlacement> {};

TEST_P(PlacementP, FaultIsolationHolds) {
  PlacementFixture fx(GetParam());
  for (uint64_t n = 0; n < 10; ++n) {
    fx.Put(n, (3 + n) * kChunk, RedundancyLevel::kParity2);
  }
  // Any two failures are survivable: chunks of a stripe are on distinct
  // devices under both placements.
  ASSERT_TRUE(fx.array->FailDevice(0).ok());
  (void)fx.stripes->OnDeviceFailure(0);
  ASSERT_TRUE(fx.array->FailDevice(4).ok());
  (void)fx.stripes->OnDeviceFailure(4);
  for (uint64_t n = 0; n < 10; ++n) {
    EXPECT_NE(fx.stripes->SurvivalOf(Oid(n)), ObjectSurvival::kLost) << n;
    auto got = fx.stripes->GetObject(Oid(n), 0);
    EXPECT_TRUE(got.ok()) << n;
  }
}

TEST_P(PlacementP, RoundTripUnaffected) {
  PlacementFixture fx(GetParam());
  auto payload =
      BackendStore::SynthesizePayload(Oid(1), 0, fx.stripes->PhysicalSize(9 * kChunk));
  ASSERT_TRUE(fx.stripes->PutObject(Oid(1), payload, 9 * kChunk,
                                    RedundancyLevel::kParity1, 0).ok());
  auto got = fx.stripes->GetObject(Oid(1), 0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->payload, payload);
}

INSTANTIATE_TEST_SUITE_P(Placements, PlacementP,
                         ::testing::Values(ParityPlacement::kRotating,
                                           ParityPlacement::kAgeSkewed),
                         [](const auto& info) {
                           return info.param == ParityPlacement::kRotating
                                      ? "rotating"
                                      : "ageskewed";
                         });

TEST(PlacementWearTest, AgeSkewedConcentratesParityUpdateWrites) {
  // Full-stripe writes put exactly one chunk per device either way; the
  // differential aging appears under *partial updates*, where every update
  // rewrites the parity chunk (Differential RAID's observation).
  auto spread = [](ParityPlacement placement) {
    PlacementFixture fx(placement);
    for (uint64_t n = 0; n < 20; ++n) {
      auto payload = BackendStore::SynthesizePayload(
          Oid(n), 0, fx.stripes->PhysicalSize(8 * kChunk));
      REO_CHECK(fx.stripes->PutObject(Oid(n), payload, 8 * kChunk,
                                      RedundancyLevel::kParity1, 0).ok());
    }
    Pcg32 rng(3);
    std::vector<uint8_t> update(64, 0xAF);
    for (int i = 0; i < 600; ++i) {
      uint64_t n = rng.NextBounded(20);
      uint64_t offset = rng.NextBounded(8 * kChunk - 64);
      REO_CHECK(fx.stripes->UpdateObjectRange(Oid(n), offset, update, 0).ok());
    }
    uint64_t total = 0, peak = 0;
    for (DeviceIndex d = 0; d < fx.array->size(); ++d) {
      uint64_t w = fx.array->device(d).wear().bytes_written;
      total += w;
      peak = std::max(peak, w);
    }
    return static_cast<double>(peak) * 5.0 / static_cast<double>(total);
  };
  double rotating = spread(ParityPlacement::kRotating);
  double skewed = spread(ParityPlacement::kAgeSkewed);
  // Rotating stays near-even; pinning parity makes one device absorb the
  // per-update parity rewrite (~half of all update writes).
  EXPECT_LT(rotating, 1.4);
  EXPECT_GT(skewed, rotating + 0.4);
}

}  // namespace
}  // namespace reo
