// Classification (Table II), adaptive H_hot selection, protection policies,
// and the LRU list.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/classifier.h"
#include "core/lru.h"
#include "core/policy.h"

namespace reo {
namespace {

ObjectId Oid(uint64_t n) { return ObjectId{kFirstUserId, 0x20000 + n}; }

ObjectState MakeState(uint64_t n, uint64_t size, uint64_t freq,
                      bool dirty = false, bool metadata = false) {
  return ObjectState{.id = Oid(n),
                     .logical_size = size,
                     .freq = freq,
                     .dirty = dirty,
                     .is_metadata = metadata};
}

// --- Table II classification -----------------------------------------------------

TEST(ClassifyTest, TableIIMapping) {
  double h_hot = 0.01;
  // Metadata wins regardless of everything else.
  EXPECT_EQ(Classify(MakeState(1, 100, 0, true, true), h_hot), DataClass::kMetadata);
  // Dirty beats hot/cold.
  EXPECT_EQ(Classify(MakeState(2, 100, 1000, true), h_hot), DataClass::kDirty);
  // Hot: H = 10/100 = 0.1 >= 0.01.
  EXPECT_EQ(Classify(MakeState(3, 100, 10), h_hot), DataClass::kHotClean);
  // Cold: H = 1/10000 < 0.01.
  EXPECT_EQ(Classify(MakeState(4, 10000, 1), h_hot), DataClass::kColdClean);
}

TEST(ClassifyTest, HFavorsSmallFrequentObjects) {
  // Same frequency, smaller object -> larger H (paper §IV.C.1).
  EXPECT_GT(MakeState(1, 100, 5).H(), MakeState(2, 1000, 5).H());
  // Same size, more reads -> larger H.
  EXPECT_GT(MakeState(1, 100, 9).H(), MakeState(2, 100, 5).H());
}

TEST(ClassifyTest, ClassNamesAndOrder) {
  EXPECT_EQ(static_cast<int>(DataClass::kMetadata), 0);
  EXPECT_EQ(static_cast<int>(DataClass::kDirty), 1);
  EXPECT_EQ(static_cast<int>(DataClass::kHotClean), 2);
  EXPECT_EQ(static_cast<int>(DataClass::kColdClean), 3);
  EXPECT_EQ(to_string(DataClass::kHotClean), "hot-clean");
}

// --- Adaptive threshold -------------------------------------------------------------

/// Redundancy cost model for tests: protecting S bytes costs S (1:1).
uint64_t UnitCost(uint64_t size) { return size; }

TEST(AdaptiveHotClassifierTest, BudgetAdmitsHottestFirst) {
  AdaptiveHotClassifier c(UnitCost);
  // H values: a=1.0 (100/100), b=0.5, c=0.1.
  std::vector<ObjectState> objs{MakeState(1, 100, 100), MakeState(2, 100, 50),
                                MakeState(3, 100, 10)};
  // Budget of 200 admits the two hottest (cost 100 each).
  double h = c.Refresh(objs, 200);
  EXPECT_DOUBLE_EQ(h, 0.5);
  EXPECT_EQ(c.hot_count(), 2u);
  // The admitted boundary is inclusive: H == h_hot classifies hot.
  EXPECT_EQ(Classify(MakeState(2, 100, 50), h), DataClass::kHotClean);
  EXPECT_EQ(Classify(MakeState(3, 100, 10), h), DataClass::kColdClean);
}

TEST(AdaptiveHotClassifierTest, ZeroBudgetAdmitsNothing) {
  AdaptiveHotClassifier c(UnitCost);
  double h = c.Refresh({MakeState(1, 100, 100)}, 0);
  EXPECT_TRUE(std::isinf(h));
  EXPECT_EQ(c.hot_count(), 0u);
}

TEST(AdaptiveHotClassifierTest, LargeBudgetAdmitsAll) {
  AdaptiveHotClassifier c(UnitCost);
  std::vector<ObjectState> objs;
  for (uint64_t i = 0; i < 10; ++i) objs.push_back(MakeState(i, 100, i + 1));
  double h = c.Refresh(objs, 100000);
  EXPECT_EQ(c.hot_count(), 10u);
  // Threshold equals the coldest candidate's H: everything stays hot.
  EXPECT_DOUBLE_EQ(h, MakeState(0, 100, 1).H());
}

TEST(AdaptiveHotClassifierTest, StopsAtFirstOverflow) {
  AdaptiveHotClassifier c(UnitCost);
  // Hot first (small, frequent), then one huge object that busts the budget,
  // then small ones that *would* fit: the paper's greedy walk stops at the
  // first object that does not fit.
  std::vector<ObjectState> objs{
      MakeState(1, 100, 1000),   // H=10, cost 100
      MakeState(2, 10000, 500),  // H=0.05, cost 10000 -> overflow
      MakeState(3, 100, 1),      // H=0.01
  };
  double h = c.Refresh(objs, 200);
  EXPECT_EQ(c.hot_count(), 1u);
  EXPECT_DOUBLE_EQ(h, 10.0);
}

TEST(AdaptiveHotClassifierTest, DeterministicTieBreak) {
  AdaptiveHotClassifier c(UnitCost);
  std::vector<ObjectState> a{MakeState(2, 100, 10), MakeState(1, 100, 10)};
  std::vector<ObjectState> b{MakeState(1, 100, 10), MakeState(2, 100, 10)};
  EXPECT_DOUBLE_EQ(c.Refresh(a, 100), c.Refresh(b, 100));
}

// --- Policy -----------------------------------------------------------------------

TEST(PolicyTest, UniformModesIgnoreClass) {
  for (auto [mode, level] :
       std::vector<std::pair<ProtectionMode, RedundancyLevel>>{
           {ProtectionMode::kUniform0, RedundancyLevel::kNone},
           {ProtectionMode::kUniform1, RedundancyLevel::kParity1},
           {ProtectionMode::kUniform2, RedundancyLevel::kParity2},
           {ProtectionMode::kFullReplication, RedundancyLevel::kReplicate}}) {
    RedundancyPolicy p({.mode = mode});
    for (auto cls : {DataClass::kMetadata, DataClass::kDirty,
                     DataClass::kHotClean, DataClass::kColdClean}) {
      EXPECT_EQ(p.LevelFor(cls), level) << to_string(mode) << "/" << to_string(cls);
      EXPECT_FALSE(p.ReserveApplies(cls));
    }
  }
}

TEST(PolicyTest, ReoMapsTableII) {
  RedundancyPolicy p({.mode = ProtectionMode::kReo});
  EXPECT_EQ(p.LevelFor(DataClass::kMetadata), RedundancyLevel::kReplicate);
  EXPECT_EQ(p.LevelFor(DataClass::kDirty), RedundancyLevel::kReplicate);
  EXPECT_EQ(p.LevelFor(DataClass::kHotClean), RedundancyLevel::kParity2);
  EXPECT_EQ(p.LevelFor(DataClass::kColdClean), RedundancyLevel::kNone);
}

TEST(PolicyTest, ReserveFraction) {
  RedundancyPolicy p({.mode = ProtectionMode::kReo, .reo_reserve_fraction = 0.2});
  EXPECT_EQ(p.ReserveBytes(1000), 200u);
  // Mandatory-protection classes are exempt from the cap.
  EXPECT_FALSE(p.ReserveApplies(DataClass::kMetadata));
  EXPECT_FALSE(p.ReserveApplies(DataClass::kDirty));
  EXPECT_TRUE(p.ReserveApplies(DataClass::kHotClean));
  EXPECT_TRUE(p.ReserveApplies(DataClass::kColdClean));
}

TEST(PolicyTest, UniformReserveIsUncapped) {
  RedundancyPolicy p({.mode = ProtectionMode::kUniform2});
  EXPECT_EQ(p.ReserveBytes(1000), 1000u);
}

// --- Redundancy level helpers -------------------------------------------------------

TEST(RedundancyLevelTest, ChunkCounts) {
  EXPECT_EQ(RedundantChunkCount(RedundancyLevel::kNone, 5), 0u);
  EXPECT_EQ(RedundantChunkCount(RedundancyLevel::kParity1, 5), 1u);
  EXPECT_EQ(RedundantChunkCount(RedundancyLevel::kParity2, 5), 2u);
  EXPECT_EQ(RedundantChunkCount(RedundancyLevel::kReplicate, 5), 4u);
  // Degenerate widths degrade gracefully.
  EXPECT_EQ(RedundantChunkCount(RedundancyLevel::kParity2, 2), 1u);
  EXPECT_EQ(RedundantChunkCount(RedundancyLevel::kParity1, 1), 0u);
  EXPECT_EQ(RedundantChunkCount(RedundancyLevel::kReplicate, 1), 0u);
}

// --- LRU ---------------------------------------------------------------------------

TEST(LruListTest, InsertTouchEvictOrder) {
  LruList lru;
  ASSERT_TRUE(lru.Insert(Oid(1)).ok());
  ASSERT_TRUE(lru.Insert(Oid(2)).ok());
  ASSERT_TRUE(lru.Insert(Oid(3)).ok());
  EXPECT_EQ(*lru.Lru(), Oid(1));
  ASSERT_TRUE(lru.Touch(Oid(1)).ok());  // 1 becomes MRU
  EXPECT_EQ(*lru.Lru(), Oid(2));
  ASSERT_TRUE(lru.Remove(Oid(2)).ok());
  EXPECT_EQ(*lru.Lru(), Oid(3));
  EXPECT_EQ(lru.size(), 2u);
}

TEST(LruListTest, DuplicatesAndMissing) {
  LruList lru;
  ASSERT_TRUE(lru.Insert(Oid(1)).ok());
  EXPECT_EQ(lru.Insert(Oid(1)).code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(lru.Touch(Oid(9)).code(), ErrorCode::kNotFound);
  EXPECT_EQ(lru.Remove(Oid(9)).code(), ErrorCode::kNotFound);
}

TEST(LruListTest, EmptyHasNoLru) {
  LruList lru;
  EXPECT_FALSE(lru.Lru().has_value());
  EXPECT_TRUE(lru.empty());
}

TEST(LruListTest, ForEachLruFirstOrder) {
  LruList lru;
  for (uint64_t i = 1; i <= 4; ++i) ASSERT_TRUE(lru.Insert(Oid(i)).ok());
  std::vector<ObjectId> seen;
  lru.ForEachLruFirst([&](ObjectId id) {
    seen.push_back(id);
    return true;
  });
  EXPECT_EQ(seen, (std::vector<ObjectId>{Oid(1), Oid(2), Oid(3), Oid(4)}));
}

TEST(LruListTest, ForEachToleratesRemovalInsideCallback) {
  LruList lru;
  for (uint64_t i = 1; i <= 4; ++i) ASSERT_TRUE(lru.Insert(Oid(i)).ok());
  std::vector<ObjectId> seen;
  lru.ForEachLruFirst([&](ObjectId id) {
    seen.push_back(id);
    (void)lru.Remove(id);
    // Also remove the *next* LRU entry; the walk must skip it.
    if (auto next = lru.Lru()) (void)lru.Remove(*next);
    return true;
  });
  EXPECT_EQ(seen, (std::vector<ObjectId>{Oid(1), Oid(3)}));
  EXPECT_TRUE(lru.empty());
}

TEST(LruListTest, ForEachEarlyStop) {
  LruList lru;
  for (uint64_t i = 1; i <= 4; ++i) ASSERT_TRUE(lru.Insert(Oid(i)).ok());
  int visits = 0;
  lru.ForEachLruFirst([&](ObjectId) { return ++visits < 2; });
  EXPECT_EQ(visits, 2);
}

}  // namespace
}  // namespace reo
