// Cluster-mode tests: the consistent-hash ring's distribution and remap
// guarantees, node-health state transitions, the owner-hint control
// messages, the server-side cluster directory, and — the headline — a
// three-node drill that SIGKILLs one node mid-burst and byte-verifies
// every acked class-0/1 object after the cross-node differentiated
// recovery.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <set>
#include <unordered_map>
#include <vector>

#include "cluster/cluster_initiator.h"
#include "cluster/hash_ring.h"
#include "cluster/node_health.h"
#include "cluster/recovery_driver.h"
#include "common/rng.h"
#include "osd/cluster_directory.h"
#include "osd/control_protocol.h"
#include "osd/osd_target.h"
#include "server/osd_server.h"
#include "trace/event_log.h"

namespace reo {
namespace {

ObjectId KeyOf(uint32_t i) {
  return ObjectId{kFirstUserId, kFirstUserId + 0x1000 + i};
}

// --- Hash ring --------------------------------------------------------------

TEST(HashRingTest, SkewWithinBoundsUnderThousandVirtualNodes) {
  constexpr uint32_t kNodes = 5;
  constexpr uint32_t kKeys = 50000;
  HashRing ring(HashRingConfig{.virtual_nodes = 1000});
  for (uint32_t n = 0; n < kNodes; ++n) ring.AddNode(n);
  std::vector<uint32_t> counts(kNodes, 0);
  for (uint32_t i = 0; i < kKeys; ++i) ++counts[*ring.OwnerOf(KeyOf(i))];
  // 1000 vnodes/node keeps every share within 25% of the fair 1/N —
  // and in particular nowhere near zero (the failure mode where two
  // nodes' ring points collide and one shadows the other entirely).
  const double fair = static_cast<double>(kKeys) / kNodes;
  for (uint32_t n = 0; n < kNodes; ++n) {
    EXPECT_GT(counts[n], fair * 0.75) << "node " << n << " starved";
    EXPECT_LT(counts[n], fair * 1.25) << "node " << n << " overloaded";
  }
}

TEST(HashRingTest, EveryNodeOwnsKeysAtDefaultVnodeCount) {
  // Regression for the vnode point formula: OR-ing the node id into a
  // constant with overlapping bits gave nodes 0 and 1 identical points,
  // so node 1 owned nothing and a "kill node 1" drill tested nothing.
  for (uint32_t members : {2u, 3u, 5u, 8u}) {
    HashRing ring;
    for (uint32_t n = 0; n < members; ++n) ring.AddNode(n);
    std::vector<uint32_t> counts(members, 0);
    for (uint32_t i = 0; i < 3000; ++i) ++counts[*ring.OwnerOf(KeyOf(i))];
    for (uint32_t n = 0; n < members; ++n) {
      EXPECT_GT(counts[n], 0u)
          << "node " << n << " of " << members << " owns no keys";
    }
  }
}

TEST(HashRingTest, MembershipChangeRemapsAboutOneNthOfKeys) {
  constexpr uint32_t kNodes = 8;
  constexpr uint32_t kKeys = 20000;
  HashRing ring;
  for (uint32_t n = 0; n < kNodes; ++n) ring.AddNode(n);
  std::vector<uint32_t> before(kKeys);
  for (uint32_t i = 0; i < kKeys; ++i) before[i] = *ring.OwnerOf(KeyOf(i));

  ring.RemoveNode(3);
  uint32_t remapped = 0;
  for (uint32_t i = 0; i < kKeys; ++i) {
    uint32_t now = *ring.OwnerOf(KeyOf(i));
    if (now != before[i]) ++remapped;
    // Consistency: only the removed node's keys may move.
    if (before[i] != 3) EXPECT_EQ(now, before[i]) << "key " << i;
  }
  // Regression-pin the remap fraction near 1/N = 0.125 (the whole point
  // of consistent hashing; mod-N hashing would remap ~7/8 here).
  double fraction = static_cast<double>(remapped) / kKeys;
  EXPECT_GT(fraction, 0.06);
  EXPECT_LT(fraction, 0.20);

  // Re-adding restores the exact original assignment.
  ring.AddNode(3);
  for (uint32_t i = 0; i < kKeys; ++i) {
    ASSERT_EQ(*ring.OwnerOf(KeyOf(i)), before[i]) << "key " << i;
  }
}

TEST(HashRingTest, RemovedNodesKeysLandOnTheirRingSuccessor) {
  // The invariant the owner-hint design rests on: the node a hint is
  // placed on (the ring successor) is exactly where the key remaps when
  // its owner leaves the ring.
  constexpr uint32_t kNodes = 5;
  HashRing ring;
  for (uint32_t n = 0; n < kNodes; ++n) ring.AddNode(n);
  std::vector<std::pair<ObjectId, uint32_t>> expect;
  for (uint32_t i = 0; i < 4000; ++i) {
    if (*ring.OwnerOf(KeyOf(i)) == 2) {
      expect.emplace_back(KeyOf(i), *ring.SuccessorOf(KeyOf(i)));
    }
  }
  ASSERT_FALSE(expect.empty());
  ring.RemoveNode(2);
  for (const auto& [id, successor] : expect) {
    EXPECT_EQ(*ring.OwnerOf(id), successor);
  }
}

TEST(HashRingTest, ReplicasAreDistinctAndOwnerFirst) {
  HashRing ring;
  for (uint32_t n = 0; n < 4; ++n) ring.AddNode(n);
  for (uint32_t i = 0; i < 200; ++i) {
    auto replicas = ring.ReplicasOf(KeyOf(i), 4);
    ASSERT_EQ(replicas.size(), 4u);
    EXPECT_EQ(replicas[0], *ring.OwnerOf(KeyOf(i)));
    EXPECT_EQ(replicas[1], *ring.SuccessorOf(KeyOf(i)));
    std::set<uint32_t> distinct(replicas.begin(), replicas.end());
    EXPECT_EQ(distinct.size(), 4u);
  }
}

// --- Node health ------------------------------------------------------------

TEST(NodeHealthTest, ConsecutiveFailuresEscalateSuspectThenDead) {
  NodeHealthTracker health(3, NodeHealthConfig{});
  EXPECT_EQ(health.state(1), NodeState::kAlive);
  health.RecordFailure(1);
  EXPECT_EQ(health.state(1), NodeState::kAlive);
  health.RecordFailure(1);
  EXPECT_EQ(health.state(1), NodeState::kSuspect);
  EXPECT_TRUE(health.Usable(1));  // suspect still serves
  health.RecordFailure(1);
  health.RecordFailure(1);
  EXPECT_EQ(health.state(1), NodeState::kDead);
  EXPECT_FALSE(health.Usable(1));
  // One success revives fully.
  health.RecordSuccess(1, 100.0);
  EXPECT_EQ(health.state(1), NodeState::kAlive);
  EXPECT_EQ(health.stats().revived, 1u);
}

TEST(NodeHealthTest, ProbeTimerGatesDeadNodeRetries) {
  NodeHealthConfig cfg;
  cfg.probe_interval_ms = 100;
  NodeHealthTracker health(2, cfg);
  health.MarkDead(0);
  EXPECT_TRUE(health.ProbeDue(0, 1000));   // first probe goes out
  EXPECT_EQ(health.state(0), NodeState::kProbing);
  health.RecordFailure(0);                 // probe failed
  EXPECT_EQ(health.state(0), NodeState::kDead);
  EXPECT_FALSE(health.ProbeDue(0, 1050));  // interval not elapsed
  EXPECT_TRUE(health.ProbeDue(0, 1100));   // due again
  health.RecordSuccess(0, 50.0);           // probe connected
  EXPECT_EQ(health.state(0), NodeState::kAlive);
}

TEST(NodeHealthTest, FailSlowEwmaMarksLaggardSuspect) {
  NodeHealthConfig cfg;
  cfg.fail_slow_min_samples = 4;
  cfg.fail_slow_factor = 8.0;
  NodeHealthTracker health(3, cfg);
  for (int i = 0; i < 8; ++i) {
    health.RecordSuccess(0, 100.0);
    health.RecordSuccess(1, 100.0);
    health.RecordSuccess(2, 100.0);
  }
  EXPECT_EQ(health.state(2), NodeState::kAlive);
  // Node 2 never fails a connection — it just gets 100x slower.
  for (int i = 0; i < 32; ++i) health.RecordSuccess(2, 10000.0);
  EXPECT_EQ(health.state(2), NodeState::kSuspect);
  EXPECT_EQ(health.state(0), NodeState::kAlive);
}

// --- Control messages + endpoint parsing ------------------------------------

TEST(ClusterControlTest, OwnerHintAndNodeDownRoundTrip) {
  OwnerHintCommand hint{.target = KeyOf(7),
                        .class_id = 1,
                        .hotness = 42,
                        .owner = 2};
  auto decoded = DecodeControlMessage(EncodeControlMessage(hint));
  ASSERT_TRUE(decoded.ok());
  ASSERT_TRUE(std::holds_alternative<OwnerHintCommand>(*decoded));
  EXPECT_EQ(std::get<OwnerHintCommand>(*decoded), hint);

  NodeDownCommand down{.node = 3};
  auto decoded2 = DecodeControlMessage(EncodeControlMessage(down));
  ASSERT_TRUE(decoded2.ok());
  ASSERT_TRUE(std::holds_alternative<NodeDownCommand>(*decoded2));
  EXPECT_EQ(std::get<NodeDownCommand>(*decoded2), down);
}

TEST(ClusterControlTest, ParseClusterEndpoints) {
  auto list = ParseClusterEndpoints("127.0.0.1:9551,10.0.0.2:80,host:65535");
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0].host, "127.0.0.1");
  EXPECT_EQ(list[0].port, 9551);
  EXPECT_EQ(list[2].host, "host");
  EXPECT_EQ(list[2].port, 65535);
  EXPECT_TRUE(ParseClusterEndpoints("").empty());
  EXPECT_TRUE(ParseClusterEndpoints("noport").empty());
  EXPECT_TRUE(ParseClusterEndpoints("h:0").empty());
  EXPECT_TRUE(ParseClusterEndpoints("h:70000").empty());
  EXPECT_TRUE(ParseClusterEndpoints("h:12,").empty());
  EXPECT_TRUE(ParseClusterEndpoints("h:12x").empty());
}

// --- Cluster directory ------------------------------------------------------

TEST(ClusterDirectoryTest, NodeDownThenRefetchEmitsClassAccounting) {
  ClusterDirectory dir(/*local_node=*/0);
  EventLog events;
  dir.AttachEvents(events);
  // Four hints owned by node 1, one per class.
  for (uint8_t cls = 0; cls < 4; ++cls) {
    dir.RecordHint(OwnerHintCommand{.target = KeyOf(cls),
                                    .class_id = cls,
                                    .hotness = 10u - cls,
                                    .owner = 1},
                   /*now=*/1000);
  }
  EXPECT_EQ(dir.size(), 4u);
  EXPECT_EQ(dir.stats().hints, 4u);

  dir.OnNodeDown(NodeDownCommand{.node = 1}, /*now=*/2000);
  EXPECT_EQ(dir.stats().node_downs, 1u);
  EXPECT_EQ(dir.stats().degraded_misses, 2u);  // classes 2 and 3

  // A local write of a down-owned object is a refetch arriving: it is
  // re-owned here and emits cluster.refetch.
  dir.OnLocalWrite(KeyOf(0), /*now=*/3000);
  EXPECT_EQ(dir.stats().refetches, 1u);
  // Writing an object never hinted (or not down) is not a refetch.
  dir.OnLocalWrite(KeyOf(99), /*now=*/3100);
  EXPECT_EQ(dir.stats().refetches, 1u);

  const auto& log = events.events();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].category, "cluster.node_down");
  EXPECT_EQ(log[1].category, "cluster.refetch");
}

TEST(ClusterDirectoryTest, MergedJsonOrdersClassThenHotness) {
  ClusterDirectory a(0), b(0);
  a.RecordHint(
      OwnerHintCommand{.target = KeyOf(1), .class_id = 1, .hotness = 5,
                       .owner = 2},
      1);
  b.RecordHint(
      OwnerHintCommand{.target = KeyOf(2), .class_id = 0, .hotness = 1,
                       .owner = 2},
      1);
  b.RecordHint(
      OwnerHintCommand{.target = KeyOf(3), .class_id = 1, .hotness = 9,
                       .owner = 2},
      1);
  std::string json = ClusterDirectory::MergedJson({&a, &b});
  // Refetch order: class 0 first, then class 1 hot-before-cold.
  size_t p0 = json.find("\"oid\":\"0x11002\"");  // class 0
  size_t p1 = json.find("\"oid\":\"0x11003\"");  // class 1, hotness 9
  size_t p2 = json.find("\"oid\":\"0x11001\"");  // class 1, hotness 5
  ASSERT_NE(p0, std::string::npos);
  ASSERT_NE(p1, std::string::npos);
  ASSERT_NE(p2, std::string::npos);
  EXPECT_LT(p0, p1);
  EXPECT_LT(p1, p2);
}

// --- Three-node kill drill --------------------------------------------------

/// Payload-preserving data plane for the drill's node processes (same
/// shape as server_test's, local copy to keep the test self-contained).
class MapDataPlane final : public DataPlane {
 public:
  Result<DataPlaneIo> WriteObject(ObjectId id, std::span<const uint8_t> payload,
                                  uint64_t, uint8_t, SimTime now) override {
    data_[id].assign(payload.begin(), payload.end());
    return DataPlaneIo{.complete = now};
  }
  Result<DataPlaneIo> ReadObject(ObjectId id, SimTime now) override {
    auto it = data_.find(id);
    if (it == data_.end()) return Status{ErrorCode::kNotFound, "no data"};
    DataPlaneIo io;
    io.complete = now;
    io.payload.assign(it->second.begin(), it->second.end());
    return io;
  }
  Status RemoveObject(ObjectId id) override {
    return data_.erase(id) ? Status::Ok()
                           : Status{ErrorCode::kNotFound, "no data"};
  }
  Status SetObjectClass(ObjectId, uint8_t, SimTime) override {
    return Status::Ok();
  }
  ObjectHealth Health(ObjectId id) const override {
    return data_.contains(id) ? ObjectHealth::kIntact : ObjectHealth::kAbsent;
  }
  bool recovery_active() const override { return false; }
  bool HasSpaceFor(uint64_t, uint8_t) const override { return true; }

 private:
  std::unordered_map<ObjectId, std::vector<uint8_t>, ObjectIdHash> data_;
};

constexpr uint32_t kDrillObjects = 120;
constexpr uint64_t kDrillBytes = 4096;

std::vector<uint8_t> DrillPayload(uint32_t rank) {
  std::vector<uint8_t> data(kDrillBytes);
  Pcg32 rng(rank + 1, 0x9e3779b9);
  for (auto& b : data) b = static_cast<uint8_t>(rng.Next());
  return data;
}

/// Child-process body: one full cluster node (data plane + target +
/// directory + server) on an ephemeral port reported over `port_fd`,
/// serving until SIGKILLed — a real process death, torn connections and
/// all, unlike an in-process drain.
[[noreturn]] void RunNodeChild(uint32_t node_id, int port_fd) {
  MapDataPlane plane;
  OsdTarget target(plane);
  ClusterDirectory directory(node_id);
  target.AttachCluster(directory);
  OsdServer server(target, OsdServerConfig{});
  server.AttachCluster(directory);
  if (!server.Listen().ok()) _exit(2);
  uint16_t port = static_cast<uint16_t>(server.port());
  if (write(port_fd, &port, sizeof(port)) != sizeof(port)) _exit(3);
  close(port_fd);
  server.Run();
  _exit(0);
}

/// SIGKILLs and reaps every still-running drill node on scope exit, so
/// a failing ASSERT cannot leak children.
struct NodeReaper {
  std::vector<pid_t> pids;
  ~NodeReaper() {
    for (pid_t pid : pids) {
      if (pid > 0) {
        kill(pid, SIGKILL);
        waitpid(pid, nullptr, 0);
      }
    }
  }
};

TEST(ClusterIntegrationTest, ThreeNodeKillDrillPreservesAckedClass01) {
  constexpr uint32_t kNodes = 3;
  constexpr uint32_t kDeadNode = 1;
  NodeReaper reaper;
  std::vector<ClusterEndpoint> endpoints;
  for (uint32_t n = 0; n < kNodes; ++n) {
    int fds[2];
    ASSERT_EQ(pipe(fds), 0);
    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      close(fds[0]);
      RunNodeChild(n, fds[1]);
    }
    close(fds[1]);
    reaper.pids.push_back(pid);
    uint16_t port = 0;
    ASSERT_EQ(read(fds[0], &port, sizeof(port)),
              static_cast<ssize_t>(sizeof(port)));
    close(fds[0]);
    ASSERT_GT(port, 0);
    endpoints.push_back({"127.0.0.1", port});
  }

  ClusterInitiatorConfig ccfg;
  ccfg.session.receive_timeout_ms = 5000;
  ClusterInitiator cluster(endpoints, ccfg);
  ASSERT_TRUE(cluster.ConnectAll().ok());

  OsdCommand format;
  format.op = OsdOp::kFormat;
  format.capacity_bytes = 64ull << 20;
  ASSERT_TRUE(cluster.Roundtrip(format).ok());

  // Populate: every object created, classified rank%4 (placing its
  // owner hint on the ring successor), and written on its ring owner.
  std::set<uint32_t> acked;
  for (uint32_t rank = 0; rank < kDrillObjects; ++rank) {
    OsdCommand create;
    create.op = OsdOp::kCreate;
    create.id = KeyOf(rank);
    create.logical_size = kDrillBytes;
    ASSERT_TRUE(cluster.Roundtrip(create).ok()) << "rank " << rank;
    ASSERT_TRUE(
        cluster.Classify(KeyOf(rank), static_cast<uint8_t>(rank % 4)).ok());
    OsdCommand write;
    write.op = OsdOp::kWrite;
    write.id = KeyOf(rank);
    write.data = DrillPayload(rank);
    write.logical_size = write.data.size();
    ASSERT_TRUE(cluster.Roundtrip(write).ok()) << "rank " << rank;
    acked.insert(rank);
  }

  // Mixed burst with the SIGKILL landing in the middle of it. Post-kill
  // failures are the drill: reads fail over, writes surface unacked.
  Pcg32 rng(7, 3);
  for (uint32_t i = 0; i < 400; ++i) {
    if (i == 200) {
      kill(reaper.pids[kDeadNode], SIGKILL);
      waitpid(reaper.pids[kDeadNode], nullptr, 0);
      reaper.pids[kDeadNode] = -1;
    }
    uint32_t rank = rng.Next() % kDrillObjects;
    OsdCommand cmd;
    if (rng.Next() % 2 == 0) {
      cmd.op = OsdOp::kWrite;
      cmd.id = KeyOf(rank);
      cmd.data = DrillPayload(rank);  // content-stable: replays are safe
      cmd.logical_size = cmd.data.size();
    } else {
      cmd.op = OsdOp::kRead;
      cmd.id = KeyOf(rank);
    }
    (void)cluster.Roundtrip(cmd);
  }
  EXPECT_GT(cluster.stats().transport_failures, 0u);
  EXPECT_EQ(cluster.health().state(kDeadNode), NodeState::kDead);

  // Cross-node differentiated recovery, with the deterministic payload
  // generator standing in for the backend.
  ClusterRecoveryDriver driver(
      cluster, [](ObjectId id) -> Result<std::vector<uint8_t>> {
        const uint64_t base = kFirstUserId + 0x1000;
        if (id.pid != kFirstUserId || id.oid < base ||
            id.oid >= base + kDrillObjects) {
          return Status{ErrorCode::kNotFound, "no origin object"};
        }
        return DrillPayload(static_cast<uint32_t>(id.oid - base));
      });

  // The plan must be strictly class-ordered (0 before 1) and
  // hot-before-cold within a class — pinned before execution.
  ClusterRecoveryReport plan_report;
  auto plan = driver.Plan(kDeadNode, plan_report);
  ASSERT_TRUE(plan.ok());
  ASSERT_FALSE(plan->empty()) << "dead node owned no class-0/1 objects";
  for (size_t i = 1; i < plan->size(); ++i) {
    const RefetchItem& prev = (*plan)[i - 1];
    const RefetchItem& item = (*plan)[i];
    ASSERT_LE(prev.class_id, item.class_id);
    if (prev.class_id == item.class_id) {
      ASSERT_GE(prev.hotness, item.hotness);
    }
  }

  auto report = driver.Recover(kDeadNode);
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_EQ(report->survivors_queried, kNodes - 1);
  EXPECT_GT(report->refetched(), 0u);
  EXPECT_EQ(report->refetch_failures, 0u);

  // The acceptance gate: every acked class-0/1 object byte-verifies
  // through the survivors; class 2/3 may degrade to clean misses, but
  // anything served must still be byte-exact.
  uint32_t degraded = 0;
  for (uint32_t rank : acked) {
    OsdCommand read;
    read.op = OsdOp::kRead;
    read.id = KeyOf(rank);
    OsdResponse resp = cluster.Roundtrip(read);
    if (!resp.ok()) {
      ASSERT_GE(rank % 4, 2u) << "acked class-" << rank % 4
                              << " object lost: rank " << rank;
      ++degraded;
      continue;
    }
    std::vector<uint8_t> want = DrillPayload(rank);
    ASSERT_GE(resp.data.size(), want.size());
    EXPECT_TRUE(std::equal(want.begin(), want.end(), resp.data.begin()))
        << "rank " << rank << " corrupt";
  }
  // The dead node owned ~1/3 of the space; its class-2/3 share must have
  // degraded rather than been refetched.
  EXPECT_GT(degraded, 0u);
}

}  // namespace
}  // namespace reo
