// Tracing layer tests: span-ring semantics, context propagation and
// nesting, sampling, the event log, the Chrome trace exporter, and the
// end-to-end degraded-read trace the ISSUE's waterfall deliverable needs.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/cache_manager.h"
#include "osd/transport.h"
#include "trace/chrome_trace.h"
#include "trace/json_lint.h"
#include "trace/tracer.h"

namespace reo {
namespace {

constexpr uint64_t kChunk = 1024;

ObjectId Oid(uint64_t n) { return ObjectId{kFirstUserId, 0x20000 + n}; }

// --- Unit: rings, guards, sampling -----------------------------------------

TEST(SpanRecorderTest, RingOverwritesOldestAndCountsDrops) {
  Tracer tracer({.spans_per_component = 4});
  SpanRecorder& rec = tracer.RecorderFor(TraceComponent::kFlashDevice);
  SpanRecorder& root = tracer.RecorderFor(TraceComponent::kCacheManager);
  RequestTrace rt(&tracer, &root, TraceOp::kGet, 0);
  for (SimTime t = 0; t < 10; ++t) {
    rec.Record(TraceOp::kDeviceRead, t, t + 1);
  }
  EXPECT_EQ(rec.total(), 10u);
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.dropped(), 6u);
  // Retained records are the newest four, visited oldest-first.
  std::vector<SimTime> starts;
  rec.ForEach([&](const SpanRecord& r) { starts.push_back(r.start); });
  EXPECT_EQ(starts, (std::vector<SimTime>{6, 7, 8, 9}));
}

TEST(SpanRecorderTest, UnattachedAndIdleAreInert) {
  // Un-attached component: null recorder, the guard never activates.
  TraceSpan dead(nullptr, TraceOp::kDataRead, 5);
  EXPECT_FALSE(dead.active());

  // Attached but no trace open: leaf records are dropped at the gate.
  Tracer tracer;
  SpanRecorder& rec = tracer.RecorderFor(TraceComponent::kBackend);
  rec.Record(TraceOp::kBackendFetch, 0, 10);
  TraceSpan idle(&rec, TraceOp::kBackendFetch, 0);
  EXPECT_FALSE(idle.active());
  idle.Finish();
  EXPECT_EQ(rec.total(), 0u);

  // Null tracer: request guard is inert too.
  RequestTrace rt(nullptr, nullptr, TraceOp::kGet, 0);
  EXPECT_FALSE(rt.sampled());
}

TEST(TracerTest, SamplesOneInNButForcedRootsAlways) {
  Tracer tracer({.sample_every = 3});
  SpanRecorder& root = tracer.RecorderFor(TraceComponent::kCacheManager);
  int sampled = 0;
  for (int i = 0; i < 9; ++i) {
    RequestTrace rt(&tracer, &root, TraceOp::kGet, 0);
    if (rt.sampled()) ++sampled;
  }
  EXPECT_EQ(sampled, 3);
  // Failure-plane roots bypass sampling.
  for (int i = 0; i < 4; ++i) {
    RequestTrace rt(&tracer, &root, TraceOp::kFailureHandling, 0, 0,
                    /*force=*/true);
    EXPECT_TRUE(rt.sampled());
  }
  TraceStats stats = tracer.Stats();
  EXPECT_EQ(stats.requests_seen, 13u);
  EXPECT_EQ(stats.traces_sampled, 7u);
  EXPECT_EQ(stats.spans_recorded, 7u);
}

TEST(TracerTest, NestedSpansShareTraceAndChainParents) {
  Tracer tracer;
  SpanRecorder& root_rec = tracer.RecorderFor(TraceComponent::kCacheManager);
  SpanRecorder& mid_rec = tracer.RecorderFor(TraceComponent::kDataPlane);
  SpanRecorder& leaf_rec = tracer.RecorderFor(TraceComponent::kFlashDevice, 2);
  {
    RequestTrace rt(&tracer, &root_rec, TraceOp::kGet, 100, 42);
    {
      TraceSpan mid(&mid_rec, TraceOp::kDataRead, 110, 42);
      leaf_rec.Record(TraceOp::kDeviceRead, 120, 130, 42);
      mid.set_end(140);
    }
    rt.set_end(150);
  }
  SpanRecord root{}, mid{}, leaf{};
  root_rec.ForEach([&](const SpanRecord& r) { root = r; });
  mid_rec.ForEach([&](const SpanRecord& r) { mid = r; });
  leaf_rec.ForEach([&](const SpanRecord& r) { leaf = r; });

  EXPECT_NE(root.trace_id, 0u);
  EXPECT_EQ(mid.trace_id, root.trace_id);
  EXPECT_EQ(leaf.trace_id, root.trace_id);
  EXPECT_EQ(root.parent_id, kNoSpan);
  EXPECT_EQ(mid.parent_id, root.span_id);
  EXPECT_EQ(leaf.parent_id, mid.span_id);
  EXPECT_EQ(leaf.instance, 2u);
  EXPECT_EQ(root.object, 42u);
  // A fresh root after the scope closed gets a new trace id.
  RequestTrace rt2(&tracer, &root_rec, TraceOp::kPut, 200);
  ASSERT_TRUE(rt2.sampled());
  EXPECT_NE(rt2.context()->trace_id, root.trace_id);
}

TEST(EventLogTest, BoundedKeepsEarliestAndLooksUpFields) {
  EventLog log(2);
  log.Emit(10, EventSeverity::kError, "device.failure", "first",
           {{"device", "0"}});
  log.Emit(20, EventSeverity::kInfo, "recovery.rebuild", "second",
           {{"class", "1"}, {"mode", "on-demand"}});
  log.Emit(30, EventSeverity::kInfo, "recovery.rebuild", "third");
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.dropped(), 1u);
  EXPECT_EQ(log.events()[0].message, "first");
  EXPECT_EQ(log.events()[1].Field("mode"), "on-demand");
  EXPECT_EQ(log.events()[1].Field("missing"), "");
  std::string text = log.ToText();
  EXPECT_NE(text.find("device.failure"), std::string::npos);
  EXPECT_NE(text.find("mode=on-demand"), std::string::npos);
}

// --- Integration: the full stack under trace -------------------------------

/// cache_manager_test's fixture plus a Tracer and the wire transport, so a
/// request crosses transport -> osd_target -> data_plane -> flash.
struct TracedFixture {
  explicit TracedFixture(ProtectionMode mode = ProtectionMode::kUniform1,
                         TracerConfig tcfg = {})
      : tracer(tcfg) {
    FlashDeviceConfig dev;
    dev.capacity_bytes = 256 * kChunk;
    array = std::make_unique<FlashArray>(5, dev);
    stripes = std::make_unique<StripeManager>(
        *array,
        StripeManagerConfig{.chunk_logical_bytes = kChunk, .scale_shift = 0});
    plane = std::make_unique<ReoDataPlane>(
        *stripes,
        RedundancyPolicy({.mode = mode, .reo_reserve_fraction = 0.25}));
    target = std::make_unique<OsdTarget>(*plane);
    backend = std::make_unique<BackendStore>(HddConfig{}, NetworkLinkConfig{});
    cache = std::make_unique<CacheManager>(*target, *plane, *backend,
                                           CacheManagerConfig{});
    transport = std::make_unique<OsdTransport>(*target);
    cache->initiator_mutable().UseTransport(transport.get());

    cache->AttachTracing(tracer);
    target->AttachTracing(tracer);
    transport->AttachTracing(tracer);
    cache->Initialize(0);
  }

  void Register(uint64_t n, uint64_t logical) {
    backend->RegisterObject(Oid(n), logical, stripes->PhysicalSize(logical));
    sizes[n] = logical;
  }
  RequestResult Get(uint64_t n) {
    auto r = cache->Get(Oid(n), sizes.at(n), clock.now());
    clock.Advance(r.latency);
    return r;
  }

  std::vector<SpanRecord> SpansOfTrace(TraceId id) const {
    std::vector<SpanRecord> out;
    tracer.ForEachRecorder([&](const SpanRecorder& rec) {
      rec.ForEach([&](const SpanRecord& r) {
        if (r.trace_id == id) out.push_back(r);
      });
    });
    return out;
  }

  Tracer tracer;
  std::unique_ptr<FlashArray> array;
  std::unique_ptr<StripeManager> stripes;
  std::unique_ptr<ReoDataPlane> plane;
  std::unique_ptr<OsdTarget> target;
  std::unique_ptr<BackendStore> backend;
  std::unique_ptr<CacheManager> cache;
  std::unique_ptr<OsdTransport> transport;
  std::unordered_map<uint64_t, uint64_t> sizes;
  SimClock clock;
};

TEST(TraceIntegrationTest, DegradedReadTraceNestsAcrossAllLayers) {
  // Uniform 1-parity: after one failure every read of the damaged object
  // is served degraded (no repair-on-read), deterministically exercising
  // the reconstruction path.
  TracedFixture fx;
  fx.Register(1, 8 * kChunk);
  ASSERT_FALSE(fx.Get(1).hit);
  fx.cache->OnDeviceFailure(0, fx.clock.now());

  auto r = fx.Get(1);
  ASSERT_TRUE(r.hit);
  ASSERT_TRUE(r.degraded);

  // The degraded read is the newest cache_manager root span.
  SpanRecord root{};
  fx.tracer.ForEachRecorder([&](const SpanRecorder& rec) {
    if (rec.component() != TraceComponent::kCacheManager) return;
    rec.ForEach([&](const SpanRecord& rr) {
      if (rr.parent_id == kNoSpan) root = rr;
    });
  });
  ASSERT_EQ(root.op, TraceOp::kGetDegraded);
  EXPECT_TRUE(root.flags & kSpanDegraded);
  EXPECT_EQ(root.object, Oid(1).oid);

  auto spans = fx.SpansOfTrace(root.trace_id);
  auto first_in = [&](TraceComponent c) -> const SpanRecord* {
    for (const auto& s : spans) {
      if (s.component == c) return &s;
    }
    return nullptr;
  };
  const SpanRecord* wire = first_in(TraceComponent::kTransport);
  const SpanRecord* osd = first_in(TraceComponent::kOsdTarget);
  const SpanRecord* data = first_in(TraceComponent::kDataPlane);
  const SpanRecord* recon = first_in(TraceComponent::kReconstruction);
  const SpanRecord* dev = first_in(TraceComponent::kFlashDevice);
  ASSERT_NE(wire, nullptr);
  ASSERT_NE(osd, nullptr);
  ASSERT_NE(data, nullptr);
  ASSERT_NE(recon, nullptr);
  ASSERT_NE(dev, nullptr);

  // Parent chain: root -> transport -> osd_target -> data_plane.
  EXPECT_EQ(wire->parent_id, root.span_id);
  EXPECT_EQ(osd->parent_id, wire->span_id);
  EXPECT_EQ(data->parent_id, osd->span_id);
  EXPECT_EQ(recon->parent_id, data->span_id);
  EXPECT_EQ(recon->op, TraceOp::kStripeDecode);

  // Virtual-clock containment down the waterfall.
  auto within = [](const SpanRecord& inner, const SpanRecord& outer) {
    return outer.start <= inner.start && inner.end <= outer.end;
  };
  EXPECT_TRUE(within(*wire, root));
  EXPECT_TRUE(within(*osd, *wire));
  EXPECT_TRUE(within(*data, *osd));
  EXPECT_TRUE(within(*recon, *data));
  // Survivor reads land on the device tracks during the decode.
  EXPECT_GE(dev->start, root.start);
  EXPECT_EQ(dev->op, TraceOp::kDeviceRead);

  // The degraded flag propagates to the layers that saw it.
  EXPECT_TRUE(wire->flags & kSpanDegraded);
  EXPECT_TRUE(osd->flags & kSpanDegraded);
  EXPECT_TRUE(data->flags & kSpanDegraded);
}

TEST(TraceIntegrationTest, FailureEmitsEventsAndForcedTrace) {
  TracedFixture fx(ProtectionMode::kUniform1, {.sample_every = 1000000});
  fx.Register(1, 4 * kChunk);
  fx.Register(2, 4 * kChunk);
  fx.Get(1);  // root #1 — the 1-in-N sampler always takes the first
  fx.Get(2);  // unsampled at 1-in-1e6
  uint64_t sampled_before = fx.tracer.Stats().traces_sampled;
  EXPECT_EQ(sampled_before, 1u);

  fx.cache->OnDeviceFailure(0, fx.clock.now());
  // The failure-plane root is forced past the sampler...
  EXPECT_GT(fx.tracer.Stats().traces_sampled, sampled_before);
  // ...and the structured events are on the log.
  const auto& events = fx.tracer.events().events();
  auto has = [&](std::string_view cat) {
    return std::any_of(events.begin(), events.end(), [&](const LoggedEvent& e) {
      return e.category == cat;
    });
  };
  EXPECT_TRUE(has("device.failure"));
}

TEST(TraceIntegrationTest, ChromeTraceJsonIsWellFormed) {
  TracedFixture fx;
  fx.Register(1, 8 * kChunk);
  fx.Register(2, 4 * kChunk);
  fx.Get(1);
  fx.Get(2);
  fx.cache->OnDeviceFailure(0, fx.clock.now());
  fx.Get(1);
  fx.cache->DrainRecovery(fx.clock.now());

  std::string json = ChromeTraceJson(fx.tracer);
  JsonLintResult lint = LintJson(json);
  EXPECT_TRUE(lint.ok) << lint.error << " at " << lint.error_offset;
  EXPECT_GT(lint.complete_events, 0u);
  EXPECT_GT(lint.metadata_events, 0u);
  EXPECT_GT(lint.instant_events, 0u);
  // One named track per populated component + the process + event tracks.
  EXPECT_NE(json.find("\"name\":\"transport\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"flash.dev0\""), std::string::npos);

  std::string report = TraceReportText(fx.tracer);
  EXPECT_NE(report.find("Recovery timeline"), std::string::npos);
  EXPECT_NE(report.find("Trace accounting"), std::string::npos);
}

}  // namespace
}  // namespace reo
