// FTL model tests: mapping semantics, GC correctness, write amplification
// behaviour, TRIM, wear accounting, and the FlashDevice integration.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "flash/flash_device.h"
#include "flash/ftl.h"

namespace reo {
namespace {

FtlConfig SmallFtl(GcPolicy policy = GcPolicy::kGreedy) {
  FtlConfig cfg;
  cfg.page_bytes = 4096;
  cfg.pages_per_block = 8;
  cfg.block_count = 16;  // 128 pages physical
  cfg.over_provisioning = 0.25;
  cfg.gc_low_watermark = 2;
  cfg.gc_policy = policy;
  return cfg;
}

TEST(FtlTest, GeometryAndLogicalSpace) {
  Ftl ftl(SmallFtl());
  EXPECT_EQ(ftl.logical_pages(), 96u);  // 128 * 0.75
  EXPECT_EQ(ftl.mapped_pages(), 0u);
  EXPECT_FALSE(ftl.IsMapped(0));
}

TEST(FtlTest, WriteMapsAndOverwriteKeepsOneMapping) {
  Ftl ftl(SmallFtl());
  ASSERT_TRUE(ftl.WritePage(5).ok());
  EXPECT_TRUE(ftl.IsMapped(5));
  EXPECT_EQ(ftl.mapped_pages(), 1u);
  ASSERT_TRUE(ftl.WritePage(5).ok());
  EXPECT_EQ(ftl.mapped_pages(), 1u);
  EXPECT_EQ(ftl.stats().host_pages_written, 2u);
}

TEST(FtlTest, OutOfBoundsRejected) {
  Ftl ftl(SmallFtl());
  EXPECT_EQ(ftl.WritePage(96).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(ftl.TrimPage(96).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(ftl.TrimPage(0).code(), ErrorCode::kNotFound);
}

TEST(FtlTest, TrimUnmaps) {
  Ftl ftl(SmallFtl());
  ASSERT_TRUE(ftl.WritePage(3).ok());
  ASSERT_TRUE(ftl.TrimPage(3).ok());
  EXPECT_FALSE(ftl.IsMapped(3));
  EXPECT_EQ(ftl.mapped_pages(), 0u);
  EXPECT_EQ(ftl.TrimPage(3).code(), ErrorCode::kNotFound);
}

TEST(FtlTest, FillsToLogicalCapacity) {
  Ftl ftl(SmallFtl());
  for (uint64_t lpn = 0; lpn < ftl.logical_pages(); ++lpn) {
    ASSERT_TRUE(ftl.WritePage(lpn).ok()) << "lpn " << lpn;
  }
  EXPECT_EQ(ftl.mapped_pages(), ftl.logical_pages());
  // All data still mapped after the GC churn of filling.
  for (uint64_t lpn = 0; lpn < ftl.logical_pages(); ++lpn) {
    EXPECT_TRUE(ftl.IsMapped(lpn));
  }
}

TEST(FtlTest, SequentialOverwriteHasLowAmplification) {
  Ftl ftl(SmallFtl());
  // Sequential overwrite invalidates whole blocks: GC finds empty victims.
  for (int round = 0; round < 20; ++round) {
    for (uint64_t lpn = 0; lpn < 64; ++lpn) {
      ASSERT_TRUE(ftl.WritePage(lpn).ok());
    }
  }
  EXPECT_LT(ftl.stats().WriteAmplification(), 1.3);
}

TEST(FtlTest, RandomOverwriteAmplifiesMore) {
  Ftl seq(SmallFtl()), rnd(SmallFtl());
  for (int round = 0; round < 20; ++round) {
    for (uint64_t lpn = 0; lpn < 90; ++lpn) {
      ASSERT_TRUE(seq.WritePage(lpn).ok());
    }
  }
  Pcg32 rng(4);
  // Same utilization (90/96 pages mapped), random overwrite order.
  for (uint64_t lpn = 0; lpn < 90; ++lpn) ASSERT_TRUE(rnd.WritePage(lpn).ok());
  for (int i = 0; i < 20 * 90; ++i) {
    ASSERT_TRUE(rnd.WritePage(rng.NextBounded(90)).ok());
  }
  EXPECT_GT(rnd.stats().WriteAmplification(), seq.stats().WriteAmplification());
  EXPECT_GT(rnd.stats().gc_runs, 0u);
}

TEST(FtlTest, HigherUtilizationAmplifiesMore) {
  auto run = [](uint64_t working_set) {
    Ftl ftl(SmallFtl());
    Pcg32 rng(9);
    for (uint64_t lpn = 0; lpn < working_set; ++lpn) {
      REO_CHECK(ftl.WritePage(lpn).ok());
    }
    for (int i = 0; i < 4000; ++i) {
      REO_CHECK(ftl.WritePage(rng.NextBounded(static_cast<uint32_t>(working_set))).ok());
    }
    return ftl.stats().WriteAmplification();
  };
  EXPECT_GT(run(90), run(48));
}

TEST(FtlTest, GcPoliciesAllPreserveData) {
  for (auto policy :
       {GcPolicy::kGreedy, GcPolicy::kCostBenefit, GcPolicy::kWearAware}) {
    Ftl ftl(SmallFtl(policy));
    Pcg32 rng(11);
    std::vector<bool> mapped(ftl.logical_pages(), false);
    for (int i = 0; i < 3000; ++i) {
      uint64_t lpn = rng.NextBounded(90);
      if (rng.NextBounded(10) < 8) {
        ASSERT_TRUE(ftl.WritePage(lpn).ok());
        mapped[lpn] = true;
      } else if (mapped[lpn]) {
        ASSERT_TRUE(ftl.TrimPage(lpn).ok());
        mapped[lpn] = false;
      }
    }
    for (uint64_t lpn = 0; lpn < ftl.logical_pages(); ++lpn) {
      EXPECT_EQ(ftl.IsMapped(lpn), mapped[lpn])
          << "policy " << static_cast<int>(policy) << " lpn " << lpn;
    }
  }
}

TEST(FtlTest, WearAwarePolicyLevelsWearBetter) {
  // Hot/cold split: 10 hot pages hammered, 60 cold pages static. Greedy GC
  // never touches the cold blocks, so their erase counts stay near zero
  // while hot blocks wear out; static wear leveling (kWearAware) migrates
  // cold blocks back into rotation.
  auto spread = [](GcPolicy policy) {
    Ftl ftl(SmallFtl(policy));
    Pcg32 rng(13);
    for (uint64_t lpn = 0; lpn < 70; ++lpn) REO_CHECK(ftl.WritePage(lpn).ok());
    for (int i = 0; i < 30000; ++i) {
      REO_CHECK(ftl.WritePage(rng.NextBounded(10)).ok());
    }
    return ftl.WearSpread();
  };
  EXPECT_LT(spread(GcPolicy::kWearAware), spread(GcPolicy::kGreedy) * 0.5);
}

TEST(FtlTest, WearLevelingPreservesData) {
  Ftl ftl(SmallFtl(GcPolicy::kWearAware));
  Pcg32 rng(19);
  for (uint64_t lpn = 0; lpn < 70; ++lpn) ASSERT_TRUE(ftl.WritePage(lpn).ok());
  for (int i = 0; i < 20000; ++i) {
    ASSERT_TRUE(ftl.WritePage(rng.NextBounded(10)).ok());
  }
  // Every page (hot and cold) must still be mapped after migrations.
  for (uint64_t lpn = 0; lpn < 70; ++lpn) EXPECT_TRUE(ftl.IsMapped(lpn));
}

TEST(FtlTest, ErasesAreCounted) {
  Ftl ftl(SmallFtl());
  Pcg32 rng(17);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(ftl.WritePage(rng.NextBounded(80)).ok());
  }
  EXPECT_GT(ftl.stats().erases, 0u);
  uint64_t total = 0;
  for (uint32_t e : ftl.erase_counts()) total += e;
  EXPECT_EQ(total, ftl.stats().erases);
  EXPECT_GE(ftl.WearSpread(), 1.0);
}

// --- FlashDevice integration -------------------------------------------------

TEST(FtlDeviceTest, WearReflectsAmplification) {
  FlashDeviceConfig cfg;
  cfg.capacity_bytes = 2 << 20;
  cfg.model_ftl = true;
  FlashDevice dev(cfg);
  ASSERT_NE(dev.ftl(), nullptr);

  // Overwrite a small set of slots repeatedly: the device keeps working
  // and FTL wear counters move.
  Pcg32 rng(3);
  std::vector<SlotId> slots;
  for (int i = 0; i < 16; ++i) {
    auto s = dev.AllocateSlot(64 * 1024);
    ASSERT_TRUE(s.ok());
    slots.push_back(*s);
  }
  std::vector<uint8_t> payload(64, 0xAB);
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(dev.WriteSlot(slots[rng.NextBounded(16)], payload).ok());
  }
  EXPECT_GT(dev.ftl()->stats().host_pages_written, 0u);
  EXPECT_GE(dev.ftl()->stats().WriteAmplification(), 1.0);
  EXPECT_EQ(dev.wear().erase_cycles, dev.ftl()->stats().erases);
  EXPECT_GT(dev.wear().bytes_written, 0u);
}

TEST(FtlDeviceTest, FreeSlotTrims) {
  FlashDeviceConfig cfg;
  cfg.capacity_bytes = 1 << 20;
  cfg.model_ftl = true;
  FlashDevice dev(cfg);
  auto s = dev.AllocateSlot(32 * 1024);
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(dev.WriteSlot(*s, std::vector<uint8_t>(32, 1)).ok());
  uint64_t mapped = dev.ftl()->mapped_pages();
  EXPECT_GT(mapped, 0u);
  ASSERT_TRUE(dev.FreeSlot(*s).ok());
  EXPECT_EQ(dev.ftl()->mapped_pages(), 0u);
}

TEST(FtlDeviceTest, ReplaceResetsFtl) {
  FlashDeviceConfig cfg;
  cfg.capacity_bytes = 1 << 20;
  cfg.model_ftl = true;
  FlashDevice dev(cfg);
  auto s = dev.AllocateSlot(8192);
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(dev.WriteSlot(*s, std::vector<uint8_t>(8, 1)).ok());
  dev.Fail();
  dev.Replace();
  ASSERT_NE(dev.ftl(), nullptr);
  EXPECT_EQ(dev.ftl()->mapped_pages(), 0u);
  EXPECT_EQ(dev.ftl()->stats().host_pages_written, 0u);
}

TEST(FtlDeviceTest, SlotChurnDoesNotLeakLpnSpace) {
  FlashDeviceConfig cfg;
  cfg.capacity_bytes = 1 << 20;
  cfg.model_ftl = true;
  FlashDevice dev(cfg);
  std::vector<uint8_t> payload(16, 7);
  // Allocate/free mixed-size slots far beyond the capacity in aggregate;
  // freed lpn ranges must be reused.
  Pcg32 rng(21);
  for (int i = 0; i < 2000; ++i) {
    uint64_t bytes = (1 + rng.NextBounded(12)) * 8192;
    auto s = dev.AllocateSlot(bytes);
    ASSERT_TRUE(s.ok()) << i;
    ASSERT_TRUE(dev.WriteSlot(*s, payload).ok()) << i;
    ASSERT_TRUE(dev.FreeSlot(*s).ok());
  }
}

}  // namespace
}  // namespace reo
