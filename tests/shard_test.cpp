// Sharded serving tests: ShardRouter unit coverage (partition stability,
// command-aware routing, fan-out response merging) plus loopback
// integration against a real 4-shard ShardedServer — cross-shard
// round trips and pipelining on one connection, the FORMAT control
// barrier under live pipelined traffic, graceful drain with in-flight
// requests on every shard, and multi-shard ADMIN aggregation.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <unordered_map>
#include <vector>

#include "osd/control_protocol.h"
#include "osd/osd_target.h"
#include "server/admin_protocol.h"
#include "server/socket_initiator.h"
#include "shard/shard_router.h"
#include "shard/sharded_server.h"
#include "telemetry/json_scan.h"
#include "telemetry/metric_registry.h"
#include "telemetry/time_series.h"
#include "trace/event_log.h"

namespace reo {
namespace {

// --- ShardRouter -------------------------------------------------------------

TEST(ShardRouterTest, PartitionIsStableAndCoversEveryShard) {
  ShardRouter router(4);
  std::set<size_t> hit;
  for (uint64_t i = 0; i < 4096; ++i) {
    ObjectId id{kFirstUserId, kFirstUserId + i};
    size_t shard = router.ShardOf(id);
    ASSERT_LT(shard, 4u);
    EXPECT_EQ(shard, router.ShardOf(id));  // stable
    hit.insert(shard);
  }
  EXPECT_EQ(hit.size(), 4u);  // splitmix64 spreads across all shards

  ShardRouter single(1);
  for (uint64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(single.ShardOf(ObjectId{kFirstUserId, kFirstUserId + i}), 0u);
  }
  // Zero shards clamps to one instead of dividing by zero.
  EXPECT_EQ(ShardRouter(0).num_shards(), 1u);
}

TEST(ShardRouterTest, NamespaceOpsFanOutDataOpsDoNot) {
  ShardRouter router(4);
  for (OsdOp op : {OsdOp::kFormat, OsdOp::kCreatePartition,
                   OsdOp::kCreateCollection, OsdOp::kRemoveCollection,
                   OsdOp::kList, OsdOp::kListCollection}) {
    OsdCommand cmd;
    cmd.op = op;
    EXPECT_TRUE(router.RouteOf(cmd).fan_out) << static_cast<int>(op);
  }
  for (OsdOp op : {OsdOp::kCreate, OsdOp::kWrite, OsdOp::kRead,
                   OsdOp::kRemove, OsdOp::kGetAttr, OsdOp::kSetAttr}) {
    OsdCommand cmd;
    cmd.op = op;
    cmd.id = ObjectId{kFirstUserId, kFirstUserId + 77};
    ShardRoute route = router.RouteOf(cmd);
    EXPECT_FALSE(route.fan_out) << static_cast<int>(op);
    EXPECT_EQ(route.shard, router.ShardOf(cmd.id)) << static_cast<int>(op);
  }
}

TEST(ShardRouterTest, ControlWritesRouteByEmbeddedTarget) {
  ShardRouter router(4);
  ObjectId victim{kFirstUserId, kFirstUserId + 0x321};

  OsdCommand setid;
  setid.op = OsdOp::kWrite;
  setid.id = kControlObject;
  setid.data =
      EncodeControlMessage(SetIdCommand{.target = victim, .class_id = 2});
  setid.logical_size = setid.data.size();
  ShardRoute sr = router.RouteOf(setid);
  EXPECT_FALSE(sr.fan_out);
  EXPECT_EQ(sr.shard, router.ShardOf(victim));

  OsdCommand query;
  query.op = OsdOp::kWrite;
  query.id = kControlObject;
  query.data = EncodeControlMessage(QueryCommand{.target = victim});
  query.logical_size = query.data.size();
  ShardRoute qr = router.RouteOf(query);
  EXPECT_FALSE(qr.fan_out);
  EXPECT_EQ(qr.shard, router.ShardOf(victim));

  // Recovery-state probe of the control object itself: any shard may be
  // reconstructing, so it must ask all of them.
  OsdCommand probe;
  probe.op = OsdOp::kWrite;
  probe.id = kControlObject;
  probe.data = EncodeControlMessage(QueryCommand{.target = kControlObject});
  probe.logical_size = probe.data.size();
  EXPECT_TRUE(router.RouteOf(probe).fan_out);

  // Malformed control payloads pick a deterministic shard (any shard
  // rejects them identically).
  OsdCommand junk;
  junk.op = OsdOp::kWrite;
  junk.id = kControlObject;
  junk.data = {0xde, 0xad};
  junk.logical_size = 2;
  ShardRoute jr = router.RouteOf(junk);
  EXPECT_FALSE(jr.fan_out);
  EXPECT_EQ(jr.shard, router.ShardOf(kControlObject));
}

TEST(ShardRouterTest, MergeFanOutResponses) {
  std::vector<OsdResponse> parts(3);
  parts[0].sense = SenseCode::kOk;
  parts[0].complete = 50;
  parts[1].sense = SenseCode::kCacheFull;
  parts[1].complete = 90;
  parts[1].degraded = true;
  parts[2].sense = SenseCode::kCorrupted;
  parts[2].complete = 10;
  parts[0].list = {kFirstUserId + 9};
  parts[1].list = {kFirstUserId + 1};
  parts[2].list = {kFirstUserId + 5};

  OsdResponse merged = MergeFanOutResponses(parts);
  EXPECT_EQ(merged.sense, SenseCode::kCacheFull);  // first non-OK by index
  EXPECT_EQ(merged.complete, 90u);                // latest completion
  EXPECT_TRUE(merged.degraded);
  ASSERT_EQ(merged.list.size(), 3u);  // concatenated and sorted
  EXPECT_EQ(merged.list[0], kFirstUserId + 1);
  EXPECT_EQ(merged.list[1], kFirstUserId + 5);
  EXPECT_EQ(merged.list[2], kFirstUserId + 9);

  std::vector<OsdResponse> all_ok(2);
  all_ok[0].complete = 5;
  all_ok[1].complete = 7;
  OsdResponse ok = MergeFanOutResponses(all_ok);
  EXPECT_EQ(ok.sense, SenseCode::kOk);
  EXPECT_EQ(ok.complete, 7u);
  EXPECT_FALSE(ok.degraded);
}

// --- ShardedServer integration ----------------------------------------------

/// Payload-preserving data plane (same stand-in server_test.cpp uses).
class MapDataPlane final : public DataPlane {
 public:
  Result<DataPlaneIo> WriteObject(ObjectId id, std::span<const uint8_t> payload,
                                  uint64_t, uint8_t, SimTime now) override {
    data_[id].assign(payload.begin(), payload.end());
    return DataPlaneIo{.complete = now};
  }
  Result<DataPlaneIo> ReadObject(ObjectId id, SimTime now) override {
    auto it = data_.find(id);
    if (it == data_.end()) return Status{ErrorCode::kNotFound, "no data"};
    DataPlaneIo io;
    io.complete = now;
    io.payload.assign(it->second.begin(), it->second.end());
    return io;
  }
  Status RemoveObject(ObjectId id) override {
    return data_.erase(id) ? Status::Ok()
                           : Status{ErrorCode::kNotFound, "no data"};
  }
  Status SetObjectClass(ObjectId, uint8_t, SimTime) override {
    return Status::Ok();
  }
  ObjectHealth Health(ObjectId id) const override {
    return data_.contains(id) ? ObjectHealth::kIntact : ObjectHealth::kAbsent;
  }
  bool recovery_active() const override { return false; }
  bool HasSpaceFor(uint64_t, uint8_t) const override { return true; }

 private:
  std::unordered_map<ObjectId, std::vector<uint8_t>, ObjectIdHash> data_;
};

OsdCommand FormatCmd() {
  OsdCommand c;
  c.op = OsdOp::kFormat;
  c.capacity_bytes = 4 << 20;
  return c;
}

std::vector<uint8_t> PayloadFor(uint32_t rank) {
  std::vector<uint8_t> data(256 + (rank % 7) * 64);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>((rank * 131 + i) & 0xFF);
  }
  return data;
}

/// 4 independent target stacks behind one ShardedServer, run on its own
/// thread; each shard carries its own registry so the aggregation tests
/// exercise the real cross-shard merge.
class ShardedServerTest : public ::testing::Test {
 protected:
  static constexpr size_t kShards = 4;

  void Start(ShardedServerConfig cfg = {}) {
    std::vector<OsdTarget*> targets;
    std::vector<MetricRegistry*> registries;
    for (size_t k = 0; k < kShards; ++k) {
      planes_.push_back(std::make_unique<MapDataPlane>());
      targets_.push_back(std::make_unique<OsdTarget>(*planes_.back()));
      registries_.push_back(std::make_unique<MetricRegistry>());
      targets_.back()->AttachTelemetry(*registries_.back());
      targets.push_back(targets_.back().get());
      registries.push_back(registries_.back().get());
    }
    server_ = std::make_unique<ShardedServer>(targets, cfg);
    server_->AttachEvents(events_);
    for (size_t k = 0; k < kShards; ++k) {
      server_->AttachShardTelemetry(k, *registries_[k]);
    }
    TrackServingDefaults(std::span<MetricRegistry* const>(registries), series_,
                         /*num_devices=*/0);
    server_->AttachAdmin(registries, &series_);
    ASSERT_TRUE(server_->Listen().ok());
    ASSERT_GT(server_->port(), 0);
    run_thread_ = std::thread([this] { server_->Run(); });
  }

  void DrainAndJoin() {
    if (!server_ || !run_thread_.joinable()) return;
    server_->RequestDrain();
    run_thread_.join();
  }

  void TearDown() override { DrainAndJoin(); }

  /// An object id owned by `shard` (scan oids until the hash lands there).
  ObjectId IdOnShard(size_t shard, uint64_t salt) const {
    for (uint64_t oid = kFirstUserId + 0x9000 + salt * 0x1000;; ++oid) {
      ObjectId id{kFirstUserId, oid};
      if (server_->router().ShardOf(id) == shard) return id;
    }
  }

  std::vector<std::unique_ptr<MapDataPlane>> planes_;
  std::vector<std::unique_ptr<OsdTarget>> targets_;
  std::vector<std::unique_ptr<MetricRegistry>> registries_;
  EventLog events_;
  TimeSeriesRing series_{
      TimeSeriesConfig{.window_ns = 50'000'000, .capacity = 64}};
  std::unique_ptr<ShardedServer> server_;
  std::thread run_thread_;
};

TEST_F(ShardedServerTest, CrossShardRoundTripsOnOneConnection) {
  Start();
  SocketInitiator client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(client.Roundtrip(FormatCmd()).ok());  // fan-out barrier

  // One object per shard, all served over this single connection: at
  // least 3 of the 4 round trips cross shards.
  constexpr uint32_t kRounds = 4;
  for (uint32_t r = 0; r < kRounds; ++r) {
    for (size_t shard = 0; shard < kShards; ++shard) {
      uint32_t rank = static_cast<uint32_t>(r * kShards + shard);
      ObjectId id = IdOnShard(shard, rank);
      std::vector<uint8_t> payload = PayloadFor(rank);

      OsdCommand create;
      create.op = OsdOp::kCreate;
      create.id = id;
      create.logical_size = payload.size();
      ASSERT_TRUE(client.Roundtrip(create).ok()) << "shard " << shard;

      OsdCommand write;
      write.op = OsdOp::kWrite;
      write.id = id;
      write.logical_size = payload.size();
      write.data = payload;
      ASSERT_TRUE(client.Roundtrip(write).ok()) << "shard " << shard;

      OsdCommand read;
      read.op = OsdOp::kRead;
      read.id = id;
      OsdResponse got = client.Roundtrip(read);
      ASSERT_TRUE(got.ok()) << "shard " << shard;
      EXPECT_EQ(got.data, payload) << "shard " << shard;
    }
  }

  EXPECT_EQ(client.stats().crc_errors, 0u);
  client.Close();
  DrainAndJoin();

  ShardedServerStats stats = server_->stats();
  EXPECT_EQ(stats.requests, 1u + 3u * kRounds * kShards);
  EXPECT_GT(stats.forwarded, 0u);
  EXPECT_EQ(stats.forwarded, stats.forward_executed);
  EXPECT_EQ(stats.crc_errors, 0u);
  EXPECT_EQ(stats.frame_errors, 0u);
  EXPECT_EQ(stats.decode_errors, 0u);
  // Every shard actually executed work (its own registry counted it).
  for (size_t k = 0; k < kShards; ++k) {
    const auto* cmds = registries_[k]->Snapshot().Find("osd.commands");
    ASSERT_NE(cmds, nullptr) << "shard " << k;
    EXPECT_GT(cmds->value, 0.0) << "shard " << k;
  }
}

TEST_F(ShardedServerTest, PipelinedCrossShardResponsesStayInOrder) {
  Start();
  SocketInitiator client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(client.Roundtrip(FormatCmd()).ok());

  // Interleave shards so consecutive pipelined frames land on different
  // loops; responses must still flush in request order.
  constexpr uint32_t kN = 24;
  std::vector<ObjectId> ids;
  for (uint32_t i = 0; i < kN; ++i) {
    ObjectId id = IdOnShard(i % kShards, 100 + i);
    ids.push_back(id);
    OsdCommand create;
    create.op = OsdOp::kCreate;
    create.id = id;
    create.logical_size = PayloadFor(i).size();
    ASSERT_TRUE(client.Roundtrip(create).ok());
    OsdCommand write;
    write.op = OsdOp::kWrite;
    write.id = id;
    write.data = PayloadFor(i);
    write.logical_size = write.data.size();
    ASSERT_TRUE(client.Roundtrip(write).ok());
  }

  // Pipeline all the reads without consuming a single response; response
  // i must carry object i's distinct payload — any cross-shard reorder
  // would pair a response with the wrong request.
  for (uint32_t i = 0; i < kN; ++i) {
    OsdCommand read;
    read.op = OsdOp::kRead;
    read.id = ids[i];
    ASSERT_TRUE(client.Send(read).ok());
  }
  for (uint32_t i = 0; i < kN; ++i) {
    auto resp = client.Receive();
    ASSERT_TRUE(resp.ok()) << "response " << i;
    ASSERT_TRUE(resp->ok()) << "response " << i;
    EXPECT_EQ(resp->data, PayloadFor(i)) << "response " << i;
  }

  client.Close();
  DrainAndJoin();
  ShardedServerStats stats = server_->stats();
  EXPECT_EQ(stats.forwarded, stats.forward_executed);
  EXPECT_EQ(stats.crc_errors + stats.frame_errors + stats.decode_errors, 0u);
}

TEST_F(ShardedServerTest, FormatBarrierDuringPipelinedTraffic) {
  Start();
  SocketInitiator client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(client.Roundtrip(FormatCmd()).ok());

  ObjectId a = IdOnShard(1, 900);
  ObjectId b = IdOnShard(2, 901);
  std::vector<uint8_t> pa = PayloadFor(900);
  std::vector<uint8_t> pb = PayloadFor(901);

  OsdCommand create_a;
  create_a.op = OsdOp::kCreate;
  create_a.id = a;
  create_a.logical_size = pa.size();
  ASSERT_TRUE(client.Roundtrip(create_a).ok());
  OsdCommand write_a;
  write_a.op = OsdOp::kWrite;
  write_a.id = a;
  write_a.data = pa;
  write_a.logical_size = pa.size();
  ASSERT_TRUE(client.Roundtrip(write_a).ok());

  // One pipelined burst: read-before-FORMAT must see the data, FORMAT
  // fans out as a pipeline barrier, traffic after it runs on the wiped
  // namespace — all six responses in request order.
  OsdCommand read_a;
  read_a.op = OsdOp::kRead;
  read_a.id = a;
  OsdCommand create_b;
  create_b.op = OsdOp::kCreate;
  create_b.id = b;
  create_b.logical_size = pb.size();
  OsdCommand write_b;
  write_b.op = OsdOp::kWrite;
  write_b.id = b;
  write_b.data = pb;
  write_b.logical_size = pb.size();

  ASSERT_TRUE(client.Send(read_a).ok());    // 0: ok, payload a
  ASSERT_TRUE(client.Send(FormatCmd()).ok());  // 1: barrier, wipes a
  ASSERT_TRUE(client.Send(create_b).ok());  // 2: ok on fresh namespace
  ASSERT_TRUE(client.Send(write_b).ok());   // 3: ok
  ASSERT_TRUE(client.Send(read_a).ok());    // 4: NOT ok — a was wiped
  ASSERT_TRUE(client.Send(read_a).ok());    // 5: still not ok

  auto r0 = client.Receive();
  ASSERT_TRUE(r0.ok());
  ASSERT_TRUE(r0->ok());
  EXPECT_EQ(r0->data, pa);
  auto r1 = client.Receive();
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(r1->ok());
  auto r2 = client.Receive();
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->ok());
  auto r3 = client.Receive();
  ASSERT_TRUE(r3.ok());
  EXPECT_TRUE(r3->ok());
  auto r4 = client.Receive();
  ASSERT_TRUE(r4.ok());
  EXPECT_FALSE(r4->ok());
  auto r5 = client.Receive();
  ASSERT_TRUE(r5.ok());
  EXPECT_FALSE(r5->ok());

  // And b survives the whole sequence.
  OsdCommand read_b;
  read_b.op = OsdOp::kRead;
  read_b.id = b;
  OsdResponse got = client.Roundtrip(read_b);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.data, pb);
}

TEST_F(ShardedServerTest, GracefulDrainCompletesInflightOnEveryShard) {
  Start();
  SocketInitiator client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(client.Roundtrip(FormatCmd()).ok());

  // Pipeline creates that land on every shard, then drain while they are
  // in flight: each must still answer, on its owning shard, before the
  // connection closes.
  constexpr uint32_t kN = 32;
  for (uint32_t i = 0; i < kN; ++i) {
    OsdCommand create;
    create.op = OsdOp::kCreate;
    create.id = IdOnShard(i % kShards, 200 + i);
    create.logical_size = 64;
    ASSERT_TRUE(client.Send(create).ok());
  }
  server_->RequestDrain();

  for (uint32_t i = 0; i < kN; ++i) {
    auto resp = client.Receive();
    ASSERT_TRUE(resp.ok()) << "in-flight response " << i << ": "
                           << resp.status().to_string();
    EXPECT_TRUE(resp->ok()) << "in-flight response " << i;
  }
  auto after = client.Receive();
  EXPECT_FALSE(after.ok());  // server closed the drained connection

  run_thread_.join();
  ShardedServerStats stats = server_->stats();
  EXPECT_EQ(stats.requests, 1u + kN);
  EXPECT_EQ(stats.forwarded, stats.forward_executed);
  // Every shard saw its share of the interleaved creates.
  for (size_t k = 0; k < kShards; ++k) {
    const auto* cmds = registries_[k]->Snapshot().Find("osd.commands");
    ASSERT_NE(cmds, nullptr);
    EXPECT_GT(cmds->value, 0.0) << "shard " << k;
  }
}

TEST_F(ShardedServerTest, DrainHookRunsOncePerShardAfterQuiesce) {
  std::atomic<uint32_t> hooks{0};
  std::array<std::atomic<uint32_t>, kShards> per_shard{};
  ShardedServerConfig cfg;
  cfg.on_shard_drained = [&](size_t shard) {
    hooks.fetch_add(1);
    per_shard[shard].fetch_add(1);
  };
  Start(cfg);
  SocketInitiator client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(client.Roundtrip(FormatCmd()).ok());
  client.Close();
  DrainAndJoin();
  EXPECT_EQ(hooks.load(), kShards);
  for (size_t k = 0; k < kShards; ++k) {
    EXPECT_EQ(per_shard[k].load(), 1u) << "shard " << k;
  }
}

TEST_F(ShardedServerTest, AdminAggregatesAcrossShards) {
  Start();
  SocketInitiator client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(client.Roundtrip(FormatCmd()).ok());

  // Touch every shard so each per-shard registry has non-zero counters.
  for (size_t shard = 0; shard < kShards; ++shard) {
    OsdCommand create;
    create.op = OsdOp::kCreate;
    create.id = IdOnShard(shard, 300 + shard);
    create.logical_size = 32;
    ASSERT_TRUE(client.Roundtrip(create).ok());
  }
  constexpr double kDataRequests = 1.0 + kShards;  // format + creates

  // STATS arg 0: the bucket-level merge across every shard's registry.
  auto merged = client.AdminRoundtrip(AdminOp::kStats);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->status, 0);
  auto mdoc = JsonDoc::Parse(merged->json);
  ASSERT_TRUE(mdoc.has_value());
  EXPECT_EQ(mdoc->number(mdoc->Find({"counters", "server.requests"})),
            kDataRequests);
  // FORMAT fanned out: every shard executed it, so merged osd.commands
  // counts kShards formats + kShards creates.
  EXPECT_EQ(mdoc->number(mdoc->Find({"counters", "osd.commands"})),
            static_cast<double>(2 * kShards));

  // STATS arg k >= 1: shard k-1 alone; per-shard requests sum to the
  // merged total (the counter-sum contract admin_probe --expect-sum
  // checks in CI).
  double sum_requests = 0.0;
  double sum_commands = 0.0;
  for (size_t k = 1; k <= kShards; ++k) {
    auto one = client.AdminRoundtrip(AdminOp::kStats,
                                     static_cast<uint32_t>(k));
    ASSERT_TRUE(one.ok());
    EXPECT_EQ(one->status, 0) << "shard " << (k - 1);
    auto doc = JsonDoc::Parse(one->json);
    ASSERT_TRUE(doc.has_value());
    int req = doc->Find({"counters", "server.requests"});
    if (doc->is(req, JsonDoc::Type::kNumber)) {
      sum_requests += doc->number(req);
    }
    sum_commands += doc->number(doc->Find({"counters", "osd.commands"}));
  }
  EXPECT_EQ(sum_requests, kDataRequests);
  EXPECT_EQ(sum_commands, static_cast<double>(2 * kShards));

  // Out-of-range shard index: in-band error, connection survives.
  auto bad = client.AdminRoundtrip(AdminOp::kStats, kShards + 1);
  ASSERT_TRUE(bad.ok());
  EXPECT_NE(bad->status, 0);

  // HEALTH names the shard topology and proves no forwarded frame was
  // dropped (the invariant the CI smoke asserts via --expect-sum).
  auto health = client.AdminRoundtrip(AdminOp::kHealth);
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->status, 0);
  auto hdoc = JsonDoc::Parse(health->json);
  ASSERT_TRUE(hdoc.has_value());
  EXPECT_EQ(hdoc->number(hdoc->member(hdoc->root(), "shards")),
            static_cast<double>(kShards));
  EXPECT_EQ(hdoc->number(hdoc->member(hdoc->root(), "requests")),
            kDataRequests);
  EXPECT_EQ(hdoc->number(hdoc->member(hdoc->root(), "forwarded")),
            hdoc->number(hdoc->member(hdoc->root(), "forward_executed")));

  // EVENTS answers from the shared log (thread-safe, global order).
  auto ev = client.AdminRoundtrip(AdminOp::kEvents, 10);
  ASSERT_TRUE(ev.ok());
  EXPECT_EQ(ev->status, 0);

  client.Close();
  DrainAndJoin();
  EXPECT_EQ(server_->stats().admin_errors, 1u);  // the out-of-range probe
}

TEST_F(ShardedServerTest, ControlWritesExecuteOnTargetsShard) {
  Start();
  SocketInitiator client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(client.Roundtrip(FormatCmd()).ok());

  // SETID for an object on shard 3, sent down a connection that may be
  // homed anywhere. SETID only succeeds on the shard holding the target's
  // record (any other shard answers kFail), so a clean round trip IS the
  // routing proof.
  ObjectId id = IdOnShard(3, 400);
  OsdCommand create;
  create.op = OsdOp::kCreate;
  create.id = id;
  create.logical_size = 16;
  ASSERT_TRUE(client.Roundtrip(create).ok());

  OsdCommand setid;
  setid.op = OsdOp::kWrite;
  setid.id = kControlObject;
  setid.data =
      EncodeControlMessage(SetIdCommand{.target = id, .class_id = 3});
  setid.logical_size = setid.data.size();
  ASSERT_TRUE(client.Roundtrip(setid).ok());

  // And only shard 3's registry saw a control message.
  for (size_t k = 0; k < kShards; ++k) {
    const auto* ctl = registries_[k]->Snapshot().Find("osd.control_messages");
    double got = ctl != nullptr ? ctl->value : 0.0;
    EXPECT_EQ(got, k == 3 ? 1.0 : 0.0) << "shard " << k;
  }

  // Per-object read query routes to the same shard: after the payload
  // lands the object is intact there, so the probe answers OK.
  OsdCommand write;
  write.op = OsdOp::kWrite;
  write.id = id;
  write.data = {1, 2, 3, 4};
  write.logical_size = 4;
  ASSERT_TRUE(client.Roundtrip(write).ok());
  OsdCommand query;
  query.op = OsdOp::kWrite;
  query.id = kControlObject;
  query.data = EncodeControlMessage(QueryCommand{.target = id});
  query.logical_size = query.data.size();
  EXPECT_TRUE(client.Roundtrip(query).ok());

  // Recovery-state probe of the control object fans out to all shards
  // and answers OK while none is reconstructing.
  OsdCommand probe;
  probe.op = OsdOp::kWrite;
  probe.id = kControlObject;
  probe.data = EncodeControlMessage(QueryCommand{.target = kControlObject});
  probe.logical_size = probe.data.size();
  EXPECT_TRUE(client.Roundtrip(probe).ok());
}

}  // namespace
}  // namespace reo
