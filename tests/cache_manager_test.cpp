// Cache manager tests: hit/miss accounting, LRU eviction under redundancy
// pressure, write-back + flusher, classification traffic, failure handling
// and dirty-data protection. Full stack at scale_shift 0 with small objects.
#include <gtest/gtest.h>

#include <memory>

#include "core/cache_manager.h"

namespace reo {
namespace {

constexpr uint64_t kChunk = 1024;

ObjectId Oid(uint64_t n) { return ObjectId{kFirstUserId, 0x20000 + n}; }

struct CacheFixture {
  explicit CacheFixture(ProtectionMode mode = ProtectionMode::kReo,
                        uint64_t device_capacity = 64 * kChunk,
                        double reserve = 0.25) {
    FlashDeviceConfig dev;
    dev.capacity_bytes = device_capacity;
    array = std::make_unique<FlashArray>(5, dev);
    stripes = std::make_unique<StripeManager>(
        *array,
        StripeManagerConfig{.chunk_logical_bytes = kChunk, .scale_shift = 0});
    plane = std::make_unique<ReoDataPlane>(
        *stripes,
        RedundancyPolicy({.mode = mode, .reo_reserve_fraction = reserve}));
    target = std::make_unique<OsdTarget>(*plane);
    backend = std::make_unique<BackendStore>(HddConfig{}, NetworkLinkConfig{});
    CacheManagerConfig cfg;
    cfg.hhot_refresh_interval = 10;
    cfg.verify_hits = true;
    cache = std::make_unique<CacheManager>(*target, *plane, *backend, cfg);
    cache->Initialize(0);
  }

  void Register(uint64_t n, uint64_t logical) {
    backend->RegisterObject(Oid(n), logical, stripes->PhysicalSize(logical));
    sizes[n] = logical;
  }

  RequestResult Get(uint64_t n) {
    auto r = cache->Get(Oid(n), sizes.at(n), clock.now());
    clock.Advance(r.latency);
    return r;
  }
  RequestResult Put(uint64_t n) {
    auto r = cache->Put(Oid(n), sizes.at(n), clock.now());
    clock.Advance(r.latency);
    return r;
  }

  std::unique_ptr<FlashArray> array;
  std::unique_ptr<StripeManager> stripes;
  std::unique_ptr<ReoDataPlane> plane;
  std::unique_ptr<OsdTarget> target;
  std::unique_ptr<BackendStore> backend;
  std::unique_ptr<CacheManager> cache;
  std::unordered_map<uint64_t, uint64_t> sizes;
  SimClock clock;
};

TEST(CacheManagerTest, MissThenHit) {
  CacheFixture fx;
  fx.Register(1, 4 * kChunk);
  auto miss = fx.Get(1);
  EXPECT_FALSE(miss.hit);
  EXPECT_GT(miss.latency, 0u);

  auto hit = fx.Get(1);
  EXPECT_TRUE(hit.hit);
  EXPECT_EQ(fx.cache->stats().hits, 1u);
  EXPECT_EQ(fx.cache->stats().misses, 1u);
  // A flash hit is faster than an HDD+network miss.
  EXPECT_LT(hit.latency, miss.latency);
  // Payload verification saw no corruption.
  EXPECT_EQ(fx.cache->stats().verify_failures, 0u);
}

TEST(CacheManagerTest, InitializeInstallsMetadata) {
  CacheFixture fx;
  EXPECT_TRUE(fx.stripes->Contains(kSuperBlockObject));
  EXPECT_TRUE(fx.stripes->Contains(kDeviceTableObject));
  EXPECT_TRUE(fx.stripes->Contains(kRootDirectoryObject));
  // Metadata is replicated (Class 0).
  EXPECT_EQ(*fx.stripes->LevelOf(kSuperBlockObject), RedundancyLevel::kReplicate);
}

TEST(CacheManagerTest, LruEvictionUnderPressure) {
  CacheFixture fx(ProtectionMode::kUniform0, 16 * kChunk);  // 80 chunks raw
  for (uint64_t n = 1; n <= 6; ++n) fx.Register(n, 20 * kChunk);
  fx.Get(1);
  fx.Get(2);
  fx.Get(3);
  fx.Get(1);  // touch 1: LRU order is now 2,3,1
  fx.Get(4);  // evicts 2 (and possibly 3) to fit
  EXPECT_GT(fx.cache->stats().evictions, 0u);
  // Object 1 (recently touched) must still be cached.
  auto hit1 = fx.Get(1);
  EXPECT_TRUE(hit1.hit);
}

TEST(CacheManagerTest, OversizedObjectServedUncached) {
  CacheFixture fx(ProtectionMode::kUniform0, 8 * kChunk);  // 40 chunks raw
  fx.Register(1, 100 * kChunk);
  auto r = fx.Get(1);
  EXPECT_FALSE(r.hit);
  EXPECT_GE(fx.cache->stats().uncacheable, 1u);
  EXPECT_EQ(fx.cache->resident_objects(), 3u);  // only the metadata objects
}

TEST(CacheManagerTest, WriteBackMakesDirtyThenFlushes) {
  CacheFixture fx;
  fx.Register(1, 3 * kChunk);
  auto w = fx.Put(1);
  EXPECT_TRUE(w.is_write);
  EXPECT_TRUE(w.hit);  // absorbed by cache
  // Dirty data is replicated under Reo.
  EXPECT_EQ(*fx.stripes->LevelOf(Oid(1)), RedundancyLevel::kReplicate);
  EXPECT_EQ(fx.backend->flush_count(), 0u);

  // Let virtual time pass; the flusher drains and the object is
  // reclassified clean (no longer replicated).
  fx.clock.Advance(10 * kNsPerSec);
  fx.cache->AdvanceBackground(fx.clock.now());
  EXPECT_EQ(fx.backend->flush_count(), 1u);
  EXPECT_EQ(fx.cache->stats().flushes, 1u);
  EXPECT_NE(*fx.stripes->LevelOf(Oid(1)), RedundancyLevel::kReplicate);

  // The flushed version is what the backend now serves.
  EXPECT_GT(*fx.backend->VersionOf(Oid(1)), 0u);
  // A subsequent hit sees consistent content.
  auto h = fx.Get(1);
  EXPECT_TRUE(h.hit);
  EXPECT_EQ(fx.cache->stats().verify_failures, 0u);
}

TEST(CacheManagerTest, OverwriteSupersedesPendingFlush) {
  CacheFixture fx;
  fx.Register(1, 2 * kChunk);
  fx.Put(1);
  fx.Put(1);  // newer version before the first flush happens
  fx.clock.Advance(10 * kNsPerSec);
  fx.cache->AdvanceBackground(fx.clock.now());
  // Only the newest version reaches the backend.
  EXPECT_EQ(fx.backend->flush_count(), 1u);
  auto h = fx.Get(1);
  EXPECT_TRUE(h.hit);
  EXPECT_EQ(fx.cache->stats().verify_failures, 0u);
}

TEST(CacheManagerTest, DirtySurvivesFourFailuresUnderReo) {
  CacheFixture fx;
  fx.Register(1, 2 * kChunk);
  fx.Put(1);
  // Replicated across 5 devices: kill 4, the dirty copy must survive.
  for (DeviceIndex d = 0; d < 4; ++d) {
    fx.cache->OnDeviceFailure(d, fx.clock.now());
  }
  EXPECT_EQ(fx.cache->stats().dirty_lost, 0u);
  auto h = fx.Get(1);
  EXPECT_TRUE(h.hit);
  EXPECT_EQ(fx.cache->stats().verify_failures, 0u);
}

TEST(CacheManagerTest, ColdDataLostOnFirstFailureUnderReo) {
  CacheFixture fx;
  fx.Register(1, 10 * kChunk);
  fx.Get(1);  // admitted cold (initial H_hot = +inf)
  ASSERT_EQ(*fx.stripes->LevelOf(Oid(1)), RedundancyLevel::kNone);
  fx.cache->OnDeviceFailure(0, fx.clock.now());
  EXPECT_GE(fx.cache->stats().lost_evictions, 1u);
  auto r = fx.Get(1);  // refetched from backend
  EXPECT_FALSE(r.hit);
}

TEST(CacheManagerTest, UniformParityServesDegradedReads) {
  CacheFixture fx(ProtectionMode::kUniform2);
  fx.Register(1, 9 * kChunk);
  fx.Get(1);
  fx.cache->OnDeviceFailure(0, fx.clock.now());
  auto r = fx.Get(1);
  EXPECT_TRUE(r.hit);
  // Either served degraded, or already repaired by background recovery
  // before this request — both count as a surviving hit.
  EXPECT_EQ(fx.cache->stats().verify_failures, 0u);
}

TEST(CacheManagerTest, DirtyDataReprotectedSynchronouslyAtFailure) {
  // §IV.D "minimize the vulnerable window": Class 0/1 objects are rebuilt
  // inside the failure handler itself, so the recovery queue never holds
  // critical data.
  CacheFixture fx(ProtectionMode::kReo);
  fx.Register(1, 8 * kChunk);
  fx.Put(1);
  fx.cache->OnDeviceFailure(0, fx.clock.now());
  EXPECT_GE(fx.cache->stats().rebuilds, 1u);
  EXPECT_EQ(fx.stripes->SurvivalOf(Oid(1)), ObjectSurvival::kIntact);
  // It survives a second failure immediately (no vulnerable window).
  fx.cache->OnDeviceFailure(1, fx.clock.now());
  auto r = fx.Get(1);
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(fx.cache->stats().dirty_lost, 0u);
}

TEST(CacheManagerTest, OnDemandRepairClearsBacklog) {
  // Reo repairs degraded clean objects on demand (§IV.D): a hot (Class 2,
  // 2-parity) object lost a chunk; its first access serves a degraded
  // read and repairs it in place.
  CacheFixture fx(ProtectionMode::kReo, 256 * kChunk, 0.25);
  fx.Register(1, 8 * kChunk);
  // Hammer the object across the refresh interval (10) to make it hot.
  for (int i = 0; i < 12; ++i) fx.Get(1);
  ASSERT_EQ(*fx.stripes->LevelOf(Oid(1)), RedundancyLevel::kParity2);

  fx.cache->OnDeviceFailure(0, fx.clock.now());
  ASSERT_TRUE(fx.cache->recovery_active());
  uint64_t rebuilds_before = fx.cache->stats().rebuilds;
  auto r = fx.Get(1);  // degraded read triggers repair-on-read
  EXPECT_TRUE(r.hit);
  EXPECT_GE(fx.cache->stats().rebuilds, rebuilds_before + 1);
  // Once everything recoverable is rebuilt, recovery ends (sense 0x66).
  fx.cache->DrainRecovery(fx.clock.now());
  EXPECT_FALSE(fx.cache->recovery_active());
  EXPECT_EQ(fx.stripes->SurvivalOf(Oid(1)), ObjectSurvival::kIntact);
}

TEST(CacheManagerTest, UniformHasNoRepairOnRead) {
  // Block-based uniform protection pays the reconstruction on every
  // degraded access; nothing is repaired in place without a spare.
  CacheFixture fx(ProtectionMode::kUniform1);
  fx.Register(1, 8 * kChunk);
  fx.Get(1);
  fx.cache->OnDeviceFailure(0, fx.clock.now());
  auto r1 = fx.Get(1);
  auto r2 = fx.Get(1);
  EXPECT_TRUE(r1.hit);
  EXPECT_TRUE(r1.degraded);
  EXPECT_TRUE(r2.degraded);  // still degraded: no object-level repair
  EXPECT_EQ(fx.cache->stats().rebuilds, 0u);
  // Spare insertion starts the block-level rebuild.
  fx.cache->OnSpareInserted(0, fx.clock.now());
  ASSERT_TRUE(fx.cache->recovery_active());
  fx.cache->DrainRecovery(fx.clock.now());
  EXPECT_GE(fx.cache->stats().rebuilds, 1u);
  EXPECT_EQ(fx.stripes->SurvivalOf(Oid(1)), ObjectSurvival::kIntact);
  EXPECT_FALSE(fx.Get(1).degraded);
}

TEST(CacheManagerTest, RecoveryQueryThroughControlObject) {
  CacheFixture fx(ProtectionMode::kReo, 256 * kChunk, 0.25);
  fx.Register(1, 8 * kChunk);
  // Hot clean object: recoverable after a failure, rebuilt in background.
  for (int i = 0; i < 12; ++i) fx.Get(1);
  ASSERT_EQ(*fx.stripes->LevelOf(Oid(1)), RedundancyLevel::kParity2);
  EXPECT_EQ(fx.cache->QueryObject(kControlObject, false, 0, fx.clock.now()),
            SenseCode::kOk);
  fx.cache->OnDeviceFailure(0, fx.clock.now());
  EXPECT_EQ(fx.cache->QueryObject(kControlObject, false, 0, fx.clock.now()),
            SenseCode::kRecoveryStarts);
  fx.cache->DrainRecovery(fx.clock.now());
  EXPECT_EQ(fx.cache->QueryObject(kControlObject, false, 0, fx.clock.now()),
            SenseCode::kOk);
}

TEST(CacheManagerTest, QueryObjectSenses) {
  CacheFixture fx;
  fx.Register(1, 6 * kChunk);
  fx.Get(1);
  EXPECT_EQ(fx.cache->QueryObject(Oid(1), false, 0, fx.clock.now()), SenseCode::kOk);
  // Cold object lost after a failure: query reports 0x63.
  fx.cache->OnDeviceFailure(0, fx.clock.now());
  SenseCode s = fx.cache->QueryObject(Oid(1), false, 0, fx.clock.now());
  // The object was evicted on loss, so either corrupted (still reported
  // during teardown) or absent (kFail).
  EXPECT_TRUE(s == SenseCode::kCorrupted || s == SenseCode::kFail);
}

TEST(CacheManagerTest, HotObjectsGetParityAfterRefresh) {
  CacheFixture fx(ProtectionMode::kReo, 256 * kChunk, 0.25);
  for (uint64_t n = 1; n <= 8; ++n) fx.Register(n, 4 * kChunk);
  // Hammer objects 1-2, touch 3-8 once; cross the refresh interval (10).
  for (int round = 0; round < 8; ++round) {
    fx.Get(1);
    fx.Get(2);
  }
  for (uint64_t n = 3; n <= 8; ++n) fx.Get(n);
  EXPECT_GT(fx.cache->stats().reclassifications, 0u);
  EXPECT_EQ(*fx.stripes->LevelOf(Oid(1)), RedundancyLevel::kParity2);
  // Hot data survives a failure.
  fx.cache->OnDeviceFailure(0, fx.clock.now());
  auto r = fx.Get(1);
  EXPECT_TRUE(r.hit);
}

TEST(CacheManagerTest, ReserveCapsHotParity) {
  // Tiny reserve: nothing can be protected at 2-parity.
  CacheFixture fx(ProtectionMode::kReo, 256 * kChunk, 0.0001);
  for (uint64_t n = 1; n <= 4; ++n) fx.Register(n, 4 * kChunk);
  for (int round = 0; round < 10; ++round) {
    for (uint64_t n = 1; n <= 4; ++n) fx.Get(n);
  }
  for (uint64_t n = 1; n <= 4; ++n) {
    EXPECT_EQ(*fx.stripes->LevelOf(Oid(n)), RedundancyLevel::kNone) << n;
  }
}

TEST(CacheManagerTest, EverythingDirtyForcesFlushBeforeEviction) {
  CacheFixture fx(ProtectionMode::kReo, 24 * kChunk);  // 120 chunks raw
  for (uint64_t n = 1; n <= 4; ++n) fx.Register(n, 4 * kChunk);
  // Dirty objects cost 5x: 4 objects x 20 chunks = 80 chunks + metadata.
  for (uint64_t n = 1; n <= 4; ++n) fx.Put(n);
  // A fifth write must force a flush + eviction, never dirty loss.
  fx.Register(5, 4 * kChunk);
  auto r = fx.Put(5);
  EXPECT_TRUE(r.is_write);
  EXPECT_EQ(fx.cache->stats().dirty_lost, 0u);
  EXPECT_GE(fx.backend->flush_count() + fx.cache->stats().evictions, 1u);
}

TEST(CacheManagerTest, FullReplicationModeReplicatesEverything) {
  CacheFixture fx(ProtectionMode::kFullReplication, 64 * kChunk);
  fx.Register(1, 4 * kChunk);
  fx.Get(1);
  EXPECT_EQ(*fx.stripes->LevelOf(Oid(1)), RedundancyLevel::kReplicate);
  EXPECT_NEAR(fx.stripes->Space().SpaceEfficiency(), 0.2, 0.01);
}

TEST(CacheManagerTest, StatsConsistency) {
  CacheFixture fx;
  fx.Register(1, 2 * kChunk);
  fx.Register(2, 2 * kChunk);
  fx.Get(1);
  fx.Get(1);
  fx.Get(2);
  fx.Put(2);
  const auto& st = fx.cache->stats();
  EXPECT_EQ(st.gets, 3u);
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 2u);
  EXPECT_EQ(st.writes, 1u);
  EXPECT_NEAR(st.HitRatio(), 1.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace reo
