// Recovery fuzzing: truncate the journal and data segments at every byte
// offset, flip every byte under the CRCs, and feed duplicate record
// streams. The invariants are absolute — recovery either succeeds with a
// verifiable subset of the committed state or fail-stops with kCorrupted;
// it never crashes and never resurrects an evicted object whose eviction
// was committed before intact later records.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/file_util.h"
#include "persist/persistence.h"

namespace reo {
namespace {

namespace fs = std::filesystem;

ObjectId Oid(uint64_t n) { return ObjectId{kFirstUserId, 0x30000 + n}; }

std::vector<uint8_t> Payload(uint64_t n, size_t bytes) {
  std::vector<uint8_t> data(bytes);
  for (size_t i = 0; i < bytes; ++i) {
    data[i] = static_cast<uint8_t>((n * 193 + i * 11) & 0xFF);
  }
  return data;
}

std::string ScratchDir(const std::string& name) {
  fs::path dir = fs::temp_directory_path() / ("reo_pfuzz_" + name);
  fs::remove_all(dir);
  return dir.string();
}

using DirImage = std::map<std::string, std::string>;

DirImage SnapshotDir(const std::string& dir) {
  DirImage image;
  for (const auto& entry : fs::directory_iterator(dir)) {
    auto bytes = ReadFileToString(entry.path().string());
    EXPECT_TRUE(bytes.ok()) << entry.path();
    image[entry.path().filename().string()] = *bytes;
  }
  return image;
}

void RestoreDir(const std::string& dir, const DirImage& image) {
  fs::remove_all(dir);
  fs::create_directories(dir);
  for (const auto& [name, bytes] : image) {
    std::ofstream out(dir + "/" + name, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
}

/// One pristine durable state shared by all fuzz passes: seven committed
/// writes with one eviction strictly in the middle of the journal, so any
/// damage to the evict record is mid-log corruption (fail-stop), never an
/// ambiguous torn tail.
struct FuzzFixture {
  explicit FuzzFixture(const std::string& name) {
    cfg.data_dir = ScratchDir(name);
    auto opened = PersistenceManager::Open(cfg);
    EXPECT_TRUE(opened.ok());
    auto& p = *opened;
    for (uint64_t n = 0; n < 4; ++n) {
      EXPECT_TRUE(
          p->CommitWrite(Oid(n), n % 4, 128, Payload(n, 128), 0).ok());
    }
    EXPECT_TRUE(p->CommitEvict(Oid(1), 0).ok());
    for (uint64_t n = 4; n < 7; ++n) {
      EXPECT_TRUE(
          p->CommitWrite(Oid(n), n % 4, 128, Payload(n, 128), 0).ok());
    }
    p.reset();  // destructor syncs
    pristine = SnapshotDir(cfg.data_dir);
  }

  std::string PathOf(const std::string& name) const {
    return cfg.data_dir + "/" + name;
  }

  /// The single journal / segment file of the pristine image.
  std::string wal_name = "wal-000001.log";
  std::string seg_name = "seg-000001.dat";

  PersistenceConfig cfg;
  DirImage pristine;
};

/// Recovery postconditions that must hold for ANY successfully opened
/// mutation of the pristine image.
void CheckRecoveredState(PersistenceManager& p, bool evict_must_hold) {
  EXPECT_LE(p.live_objects(), 6u);
  if (evict_must_hold) {
    EXPECT_EQ(p.Find(Oid(1)), nullptr) << "evicted object resurrected";
  }
  for (const PersistedObject& obj : p.RestoreOrder()) {
    auto payload = p.ReadPayload(obj);
    if (payload.ok()) {
      // A payload that passes CRC must be byte-exact: corruption may lose
      // objects but must never hand back altered bytes.
      EXPECT_EQ(*payload, Payload(obj.id.oid - 0x30000, 128));
    } else {
      EXPECT_EQ(payload.status().code(), ErrorCode::kCorrupted);
    }
  }
}

TEST(PersistFuzzTest, JournalTruncatedAtEveryOffsetRecovers) {
  FuzzFixture fx("wal_trunc");
  const std::string wal = fx.PathOf(fx.wal_name);
  const size_t full = fx.pristine.at(fx.wal_name).size();
  for (size_t cut = 0; cut <= full; ++cut) {
    RestoreDir(fx.cfg.data_dir, fx.pristine);
    fs::resize_file(wal, cut);
    auto opened = PersistenceManager::Open(fx.cfg);
    // A pure tail cut is always a torn tail: recovery must succeed with
    // some prefix of the committed history.
    ASSERT_TRUE(opened.ok()) << "cut at " << cut << ": "
                             << opened.status().to_string();
    // The eviction may legitimately be cut away along with later records,
    // so only the payload-integrity invariants apply here.
    CheckRecoveredState(**opened, /*evict_must_hold=*/false);
  }
}

TEST(PersistFuzzTest, JournalBitFlipNeverCrashesOrResurrects) {
  FuzzFixture fx("wal_flip");
  const size_t full = fx.pristine.at(fx.wal_name).size();
  for (size_t pos = 0; pos < full; ++pos) {
    RestoreDir(fx.cfg.data_dir, fx.pristine);
    {
      std::string bytes = fx.pristine.at(fx.wal_name);
      bytes[pos] = static_cast<char>(bytes[pos] ^ 0xFF);
      std::ofstream out(fx.PathOf(fx.wal_name),
                        std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    auto opened = PersistenceManager::Open(fx.cfg);
    if (!opened.ok()) {
      // Mid-log damage must fail-stop, not guess.
      EXPECT_EQ(opened.status().code(), ErrorCode::kCorrupted)
          << "flip at " << pos;
      continue;
    }
    // Success is only possible when the flip hit the final record (torn
    // tail) — everything before it, including the eviction, was replayed.
    CheckRecoveredState(**opened, /*evict_must_hold=*/true);
  }
}

TEST(PersistFuzzTest, DuplicateJournalStreamIsIdempotent) {
  FuzzFixture fx("wal_dup");
  RestoreDir(fx.cfg.data_dir, fx.pristine);
  {
    const std::string& bytes = fx.pristine.at(fx.wal_name);
    std::ofstream out(fx.PathOf(fx.wal_name),
                      std::ios::binary | std::ios::app);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  auto opened = PersistenceManager::Open(fx.cfg);
  ASSERT_TRUE(opened.ok()) << opened.status().to_string();
  auto& p = **opened;
  // Replaying every record twice must converge to the same state: six
  // live objects, the evicted one still gone, payloads intact.
  EXPECT_EQ(p.live_objects(), 6u);
  EXPECT_EQ(p.replay_stats().journal_records, 16u);
  CheckRecoveredState(p, /*evict_must_hold=*/true);
  for (const PersistedObject& obj : p.RestoreOrder()) {
    EXPECT_TRUE(p.ReadPayload(obj).ok());
  }
}

TEST(PersistFuzzTest, SegmentTruncatedAtEveryOffsetRecovers) {
  FuzzFixture fx("seg_trunc");
  const std::string seg = fx.PathOf(fx.seg_name);
  const size_t full = fx.pristine.at(fx.seg_name).size();
  // Step by 7 to keep runtime modest while still crossing every record
  // and header/payload boundary region.
  for (size_t cut = 0; cut <= full; cut += 7) {
    RestoreDir(fx.cfg.data_dir, fx.pristine);
    fs::resize_file(seg, cut);
    auto opened = PersistenceManager::Open(fx.cfg);
    ASSERT_TRUE(opened.ok()) << "cut at " << cut << ": "
                             << opened.status().to_string();
    auto& p = **opened;
    // Objects whose record now extends past EOF are dropped up front.
    CheckRecoveredState(p, /*evict_must_hold=*/true);
    for (const PersistedObject& obj : p.RestoreOrder()) {
      EXPECT_LE(obj.loc.record_end(), cut) << "cut at " << cut;
      EXPECT_TRUE(p.ReadPayload(obj).ok());
    }
  }
}

TEST(PersistFuzzTest, SegmentBitFlipNeverReturnsAlteredBytes) {
  FuzzFixture fx("seg_flip");
  const size_t full = fx.pristine.at(fx.seg_name).size();
  for (size_t pos = 0; pos < full; pos += 3) {
    RestoreDir(fx.cfg.data_dir, fx.pristine);
    {
      std::string bytes = fx.pristine.at(fx.seg_name);
      bytes[pos] = static_cast<char>(bytes[pos] ^ 0xFF);
      std::ofstream out(fx.PathOf(fx.seg_name),
                        std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    // The journal is intact, so recovery itself succeeds; the damage must
    // surface as a CRC failure on exactly the affected record's payload,
    // never as silently altered bytes.
    auto opened = PersistenceManager::Open(fx.cfg);
    ASSERT_TRUE(opened.ok()) << "flip at " << pos << ": "
                             << opened.status().to_string();
    CheckRecoveredState(**opened, /*evict_must_hold=*/true);
  }
}

}  // namespace
}  // namespace reo
