// StripeManager tests: put/get round trips at every redundancy level,
// space accounting, failure marking, degraded reads, reconstruction, and
// re-encoding. Runs at scale_shift 0 (full-size payloads) so every byte is
// verified.
#include <gtest/gtest.h>

#include "array/stripe_manager.h"
#include "backend/backend_store.h"
#include "common/rng.h"

namespace reo {
namespace {

constexpr uint64_t kChunk = 1024;

struct ArrayFixture {
  explicit ArrayFixture(size_t devices = 5, uint64_t device_capacity = 1 << 20)
      : array(devices, MakeDeviceConfig(device_capacity)),
        stripes(array, StripeManagerConfig{.chunk_logical_bytes = kChunk,
                                           .scale_shift = 0}) {}

  static FlashDeviceConfig MakeDeviceConfig(uint64_t capacity) {
    FlashDeviceConfig cfg;
    cfg.capacity_bytes = capacity;
    return cfg;
  }

  std::vector<uint8_t> Payload(ObjectId id, uint64_t logical) {
    return BackendStore::SynthesizePayload(id, 0, stripes.PhysicalSize(logical));
  }

  Result<ArrayIo> Put(ObjectId id, uint64_t logical, RedundancyLevel level) {
    return stripes.PutObject(id, Payload(id, logical), logical, level, 0);
  }

  FlashArray array;
  StripeManager stripes;
};

ObjectId Oid(uint64_t n) { return ObjectId{kFirstUserId, 0x20000 + n}; }

class RedundancyLevelP : public ::testing::TestWithParam<RedundancyLevel> {};

TEST_P(RedundancyLevelP, PutGetRoundTrip) {
  ArrayFixture fx;
  for (uint64_t logical :
       {uint64_t{100}, kChunk, kChunk + 1, 10 * kChunk + 37}) {
    ObjectId id = Oid(logical);
    auto payload = fx.Payload(id, logical);
    ASSERT_TRUE(fx.stripes.PutObject(id, payload, logical, GetParam(), 0).ok());
    auto got = fx.stripes.GetObject(id, 0);
    ASSERT_TRUE(got.ok()) << "size " << logical;
    EXPECT_EQ(got->payload, payload);
    EXPECT_FALSE(got->degraded);
  }
}

TEST_P(RedundancyLevelP, SurvivesExactlyItsParityCount) {
  ArrayFixture fx;
  ObjectId id = Oid(1);
  uint64_t logical = 12 * kChunk;
  ASSERT_TRUE(fx.Put(id, logical, GetParam()).ok());

  size_t survivable = FailuresSurvived(GetParam(), 5);
  for (size_t failures = 1; failures <= 5; ++failures) {
    DeviceIndex dev = static_cast<DeviceIndex>(failures - 1);
    ASSERT_TRUE(fx.array.FailDevice(dev).ok());
    (void)fx.stripes.OnDeviceFailure(dev);
    auto survival = fx.stripes.SurvivalOf(id);
    if (failures <= survivable) {
      EXPECT_NE(survival, ObjectSurvival::kLost)
          << to_string(GetParam()) << " after " << failures << " failures";
      auto got = fx.stripes.GetObject(id, 0);
      ASSERT_TRUE(got.ok());
      EXPECT_TRUE(got->degraded);
      EXPECT_EQ(got->payload, fx.Payload(id, logical));
    } else {
      EXPECT_EQ(survival, ObjectSurvival::kLost);
      EXPECT_EQ(fx.stripes.GetObject(id, 0).code(), ErrorCode::kUnrecoverable);
      break;
    }
  }
}

TEST_P(RedundancyLevelP, RemoveReleasesAllSpace) {
  ArrayFixture fx;
  uint64_t before = fx.array.used_bytes();
  ASSERT_TRUE(fx.Put(Oid(1), 7 * kChunk, GetParam()).ok());
  EXPECT_GT(fx.array.used_bytes(), before);
  ASSERT_TRUE(fx.stripes.RemoveObject(Oid(1)).ok());
  EXPECT_EQ(fx.array.used_bytes(), before);
  EXPECT_EQ(fx.stripes.user_bytes(), 0u);
  EXPECT_EQ(fx.stripes.redundancy_bytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Levels, RedundancyLevelP,
                         ::testing::Values(RedundancyLevel::kNone,
                                           RedundancyLevel::kParity1,
                                           RedundancyLevel::kParity2,
                                           RedundancyLevel::kReplicate),
                         [](const auto& info) {
                           switch (info.param) {
                             case RedundancyLevel::kNone: return "none";
                             case RedundancyLevel::kParity1: return "parity1";
                             case RedundancyLevel::kParity2: return "parity2";
                             case RedundancyLevel::kReplicate: return "replicate";
                           }
                           return "?";
                         });

TEST(StripeManagerTest, SpaceEfficiencyMatchesLevel) {
  // 12 chunks at 1-parity on 5 devices: m=4 -> 3 stripes, 3 parity chunks
  // -> efficiency 12/15 = 80 %.
  ArrayFixture fx;
  ASSERT_TRUE(fx.Put(Oid(1), 12 * kChunk, RedundancyLevel::kParity1).ok());
  EXPECT_NEAR(fx.stripes.Space().SpaceEfficiency(), 12.0 / 15.0, 1e-9);

  // Add 12 chunks at 2-parity: m=3 -> 4 stripes, 8 parity chunks.
  ASSERT_TRUE(fx.Put(Oid(2), 12 * kChunk, RedundancyLevel::kParity2).ok());
  EXPECT_NEAR(fx.stripes.Space().SpaceEfficiency(), 24.0 / (24.0 + 3 + 8), 1e-9);
}

TEST(StripeManagerTest, ReplicationUsesWidthCopies) {
  ArrayFixture fx;
  ASSERT_TRUE(fx.Put(Oid(1), 4 * kChunk, RedundancyLevel::kReplicate).ok());
  // 4 data chunks, each with 4 extra replicas.
  EXPECT_EQ(fx.stripes.user_bytes(), 4 * kChunk);
  EXPECT_EQ(fx.stripes.redundancy_bytes(), 16 * kChunk);
  EXPECT_NEAR(fx.stripes.Space().SpaceEfficiency(), 0.2, 1e-9);
}

TEST(StripeManagerTest, ZeroParityHasFullEfficiency) {
  ArrayFixture fx;
  ASSERT_TRUE(fx.Put(Oid(1), 20 * kChunk, RedundancyLevel::kNone).ok());
  EXPECT_NEAR(fx.stripes.Space().SpaceEfficiency(), 1.0, 1e-9);
}

TEST(StripeManagerTest, PerLevelRedundancyAccounting) {
  ArrayFixture fx;
  ASSERT_TRUE(fx.Put(Oid(1), 3 * kChunk, RedundancyLevel::kParity2).ok());
  ASSERT_TRUE(fx.Put(Oid(2), kChunk, RedundancyLevel::kReplicate).ok());
  EXPECT_EQ(fx.stripes.redundancy_bytes_at(RedundancyLevel::kParity2), 2 * kChunk);
  EXPECT_EQ(fx.stripes.redundancy_bytes_at(RedundancyLevel::kReplicate), 4 * kChunk);
  EXPECT_EQ(fx.stripes.redundancy_bytes_at(RedundancyLevel::kNone), 0u);
}

TEST(StripeManagerTest, ChunksAreFaultIsolated) {
  // Any single stripe loses at most one chunk per device failure, so a
  // 2-parity object must survive two arbitrary failures.
  ArrayFixture fx;
  for (uint64_t n = 0; n < 8; ++n) {
    ASSERT_TRUE(fx.Put(Oid(n), (n + 1) * kChunk, RedundancyLevel::kParity2).ok());
  }
  ASSERT_TRUE(fx.array.FailDevice(1).ok());
  (void)fx.stripes.OnDeviceFailure(1);
  ASSERT_TRUE(fx.array.FailDevice(3).ok());
  (void)fx.stripes.OnDeviceFailure(3);
  for (uint64_t n = 0; n < 8; ++n) {
    EXPECT_NE(fx.stripes.SurvivalOf(Oid(n)), ObjectSurvival::kLost) << n;
  }
}

TEST(StripeManagerTest, OverwriteReplacesContent) {
  ArrayFixture fx;
  ObjectId id = Oid(1);
  ASSERT_TRUE(fx.Put(id, 5 * kChunk, RedundancyLevel::kParity1).ok());
  uint64_t used_before = fx.array.used_bytes();

  auto payload2 = BackendStore::SynthesizePayload(id, 1, fx.stripes.PhysicalSize(3 * kChunk));
  ASSERT_TRUE(fx.stripes.PutObject(id, payload2, 3 * kChunk,
                                   RedundancyLevel::kParity1, 0).ok());
  auto got = fx.stripes.GetObject(id, 0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->payload, payload2);
  EXPECT_LT(fx.array.used_bytes(), used_before);
}

TEST(StripeManagerTest, PayloadSizeMismatchRejected) {
  ArrayFixture fx;
  std::vector<uint8_t> tiny(10);
  EXPECT_EQ(fx.stripes.PutObject(Oid(1), tiny, 5 * kChunk,
                                 RedundancyLevel::kNone, 0).code(),
            ErrorCode::kInvalidArgument);
}

TEST(StripeManagerTest, GetMissingObject) {
  ArrayFixture fx;
  EXPECT_EQ(fx.stripes.GetObject(Oid(9), 0).code(), ErrorCode::kNotFound);
  EXPECT_EQ(fx.stripes.RemoveObject(Oid(9)).code(), ErrorCode::kNotFound);
  EXPECT_EQ(fx.stripes.SurvivalOf(Oid(9)), ObjectSurvival::kLost);
}

TEST(StripeManagerTest, NoSpaceIsCleanFailure) {
  ArrayFixture fx(5, 8 * kChunk);  // 40 chunks total
  // Fill most of the array.
  ASSERT_TRUE(fx.Put(Oid(1), 30 * kChunk, RedundancyLevel::kNone).ok());
  auto r = fx.Put(Oid(2), 20 * kChunk, RedundancyLevel::kNone);
  EXPECT_EQ(r.code(), ErrorCode::kNoSpace);
  // Failed put must not leak: the second object is absent and space usage
  // unchanged.
  EXPECT_FALSE(fx.stripes.Contains(Oid(2)));
  EXPECT_EQ(fx.stripes.user_bytes(), 30 * kChunk);
}

TEST(StripeManagerTest, FootprintEstimate) {
  ArrayFixture fx;
  // 12 chunks at 2-parity: m=3 -> 4 stripes * 2 parity = 8 chunks overhead.
  EXPECT_EQ(fx.stripes.FootprintEstimate(12 * kChunk, RedundancyLevel::kParity2),
            12 * kChunk + 8 * kChunk);
  // Replication: every chunk gets width-1 = 4 copies.
  EXPECT_EQ(fx.stripes.FootprintEstimate(2 * kChunk, RedundancyLevel::kReplicate),
            2 * kChunk + 8 * kChunk);
  EXPECT_EQ(fx.stripes.FootprintEstimate(12 * kChunk, RedundancyLevel::kNone),
            12 * kChunk);
}

TEST(StripeManagerTest, OnDeviceFailureReportsAffected) {
  ArrayFixture fx;
  ASSERT_TRUE(fx.Put(Oid(1), 10 * kChunk, RedundancyLevel::kNone).ok());
  ASSERT_TRUE(fx.Put(Oid(2), 10 * kChunk, RedundancyLevel::kParity2).ok());
  ASSERT_TRUE(fx.array.FailDevice(0).ok());
  auto affected = fx.stripes.OnDeviceFailure(0);
  ASSERT_EQ(affected.size(), 2u);
  for (const auto& a : affected) {
    if (a.id == Oid(1)) {
      EXPECT_EQ(a.survival, ObjectSurvival::kLost);
    } else {
      EXPECT_EQ(a.id, Oid(2));
      EXPECT_EQ(a.survival, ObjectSurvival::kRecoverable);
      EXPECT_GT(a.lost_bytes, 0u);
    }
  }
}

TEST(StripeManagerTest, RebuildRestoresIntactState) {
  ArrayFixture fx;
  ObjectId id = Oid(1);
  uint64_t logical = 9 * kChunk;
  ASSERT_TRUE(fx.Put(id, logical, RedundancyLevel::kParity2).ok());
  ASSERT_TRUE(fx.array.FailDevice(2).ok());
  (void)fx.stripes.OnDeviceFailure(2);
  ASSERT_EQ(fx.stripes.SurvivalOf(id), ObjectSurvival::kRecoverable);

  auto rb = fx.stripes.RebuildObject(id, 0);
  ASSERT_TRUE(rb.ok());
  EXPECT_GT(rb->chunk_writes, 0u);
  EXPECT_EQ(fx.stripes.SurvivalOf(id), ObjectSurvival::kIntact);
  EXPECT_TRUE(fx.stripes.DamagedObjects().empty());

  auto got = fx.stripes.GetObject(id, 0);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got->degraded);
  EXPECT_EQ(got->payload, fx.Payload(id, logical));

  // After rebuild the object must survive another failure.
  ASSERT_TRUE(fx.array.FailDevice(4).ok());
  (void)fx.stripes.OnDeviceFailure(4);
  EXPECT_NE(fx.stripes.SurvivalOf(id), ObjectSurvival::kLost);
}

TEST(StripeManagerTest, RebuildOntoSpare) {
  ArrayFixture fx;
  ObjectId id = Oid(1);
  ASSERT_TRUE(fx.Put(id, 6 * kChunk, RedundancyLevel::kParity1).ok());
  ASSERT_TRUE(fx.array.FailDevice(0).ok());
  (void)fx.stripes.OnDeviceFailure(0);
  ASSERT_TRUE(fx.array.ReplaceDevice(0).ok());
  ASSERT_TRUE(fx.stripes.RebuildObject(id, 0).ok());
  EXPECT_EQ(fx.stripes.SurvivalOf(id), ObjectSurvival::kIntact);
  // The spare now holds data again.
  EXPECT_GT(fx.array.device(0).used_bytes(), 0u);
}

TEST(StripeManagerTest, RebuildLostObjectFails) {
  ArrayFixture fx;
  ObjectId id = Oid(1);
  ASSERT_TRUE(fx.Put(id, 6 * kChunk, RedundancyLevel::kNone).ok());
  ASSERT_TRUE(fx.array.FailDevice(0).ok());
  (void)fx.stripes.OnDeviceFailure(0);
  EXPECT_EQ(fx.stripes.RebuildObject(id, 0).code(), ErrorCode::kUnrecoverable);
}

TEST(StripeManagerTest, ReencodeChangesLevelAndPreservesContent) {
  ArrayFixture fx;
  ObjectId id = Oid(1);
  uint64_t logical = 7 * kChunk;
  ASSERT_TRUE(fx.Put(id, logical, RedundancyLevel::kNone).ok());
  EXPECT_EQ(fx.stripes.redundancy_bytes(), 0u);

  ASSERT_TRUE(fx.stripes.ReencodeObject(id, RedundancyLevel::kParity2, 0).ok());
  EXPECT_EQ(*fx.stripes.LevelOf(id), RedundancyLevel::kParity2);
  EXPECT_GT(fx.stripes.redundancy_bytes(), 0u);
  auto got = fx.stripes.GetObject(id, 0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->payload, fx.Payload(id, logical));

  // Downgrade back: redundancy released.
  ASSERT_TRUE(fx.stripes.ReencodeObject(id, RedundancyLevel::kNone, 0).ok());
  EXPECT_EQ(fx.stripes.redundancy_bytes(), 0u);
}

TEST(StripeManagerTest, ReencodeSameLevelIsNoop) {
  ArrayFixture fx;
  ObjectId id = Oid(1);
  ASSERT_TRUE(fx.Put(id, kChunk, RedundancyLevel::kParity1).ok());
  auto io = fx.stripes.ReencodeObject(id, RedundancyLevel::kParity1, 0);
  ASSERT_TRUE(io.ok());
  EXPECT_EQ(io->chunk_reads, 0u);
  EXPECT_EQ(io->chunk_writes, 0u);
}

TEST(StripeManagerTest, WritesAfterFailureUseSurvivingDevices) {
  ArrayFixture fx;
  ASSERT_TRUE(fx.array.FailDevice(0).ok());
  (void)fx.stripes.OnDeviceFailure(0);
  ObjectId id = Oid(1);
  // Width shrinks to 4: 2-parity still works with m=2.
  ASSERT_TRUE(fx.Put(id, 8 * kChunk, RedundancyLevel::kParity2).ok());
  auto got = fx.stripes.GetObject(id, 0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->payload, fx.Payload(id, 8 * kChunk));
}

TEST(StripeManagerTest, SingleSurvivorStillStoresData) {
  ArrayFixture fx;
  for (DeviceIndex d = 0; d < 4; ++d) {
    ASSERT_TRUE(fx.array.FailDevice(d).ok());
    (void)fx.stripes.OnDeviceFailure(d);
  }
  ObjectId id = Oid(1);
  ASSERT_TRUE(fx.Put(id, 2 * kChunk, RedundancyLevel::kReplicate).ok());
  auto got = fx.stripes.GetObject(id, 0);
  ASSERT_TRUE(got.ok());
}

TEST(StripeManagerTest, TimingChargesDevices) {
  ArrayFixture fx;
  ObjectId id = Oid(1);
  auto io = fx.Put(id, 10 * kChunk, RedundancyLevel::kParity1);
  ASSERT_TRUE(io.ok());
  EXPECT_GT(io->complete, 0u);
  EXPECT_EQ(io->chunk_writes, 10u + 3u);  // 10 data + 3 parity (m=4)
  auto get = fx.stripes.GetObject(id, io->complete);
  ASSERT_TRUE(get.ok());
  EXPECT_GT(get->complete, io->complete);
  EXPECT_EQ(get->chunk_reads, 10u);
}

TEST(StripeManagerTest, ScaleShiftShrinksPayload) {
  FlashArray array(5, ArrayFixture::MakeDeviceConfig(1 << 20));
  StripeManager scaled(array, StripeManagerConfig{.chunk_logical_bytes = 1024,
                                                  .scale_shift = 4});
  EXPECT_EQ(scaled.chunk_physical_bytes(), 1024u >> 4);
  EXPECT_EQ(scaled.PhysicalSize(3 * 1024), 3 * (1024u >> 4));
  // Round-trip still verifies bit-exactly at the reduced scale.
  ObjectId id = Oid(1);
  auto payload = BackendStore::SynthesizePayload(id, 0, scaled.PhysicalSize(2048));
  ASSERT_TRUE(scaled.PutObject(id, payload, 2048, RedundancyLevel::kParity2, 0).ok());
  auto got = scaled.GetObject(id, 0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->payload, payload);
}

TEST(StripeManagerTest, MinimumPhysicalChunkEnforced) {
  FlashArray array(5, ArrayFixture::MakeDeviceConfig(1 << 20));
  StripeManager scaled(array, StripeManagerConfig{.chunk_logical_bytes = 64,
                                                  .scale_shift = 6});
  EXPECT_EQ(scaled.chunk_physical_bytes(), 16u);  // floor, not 64 >> 6 = 1
}

}  // namespace
}  // namespace reo
