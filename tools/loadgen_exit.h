// Exit-code policy for reo_loadgen, factored out as a pure function so the
// precedence is unit-testable. The CI smoke jobs treat the process exit
// code as the verdict, so the ordering here is load-bearing:
//
//   1  a worker died with a fatal status (connect failure, connection lost
//      outside kill mode) — even in kill mode. Historically kill-mode
//      success was checked first, so a run whose workers never connected
//      could still exit 0 and CI would silently pass on a dead worker.
//   1  kill mode where the SIGKILL was never delivered.
//   0  kill mode with the kill delivered: dropped connections and torn
//      responses after the SIGKILL are expected, so the wire/verify gates
//      below do not apply.
//   2  wire corruption (CRC / framing / decode errors).
//   3  read-payload verification mismatches.
//   0  clean run (chaos drain-verify, when enabled, runs after this and
//      has its own codes).
#pragma once

#include <cstdint>

namespace reo::loadgen {

struct RunOutcome {
  bool worker_fatal = false;  ///< any worker finished with a fatal status
  bool kill_mode = false;     ///< --kill-after was requested
  bool killed = false;        ///< the SIGKILL was actually delivered
  uint64_t wire_errors = 0;   ///< crc + frame + decode errors
  uint64_t verify_errors = 0;
};

inline int ExitCode(const RunOutcome& o) {
  if (o.worker_fatal) return 1;
  if (o.kill_mode) return o.killed ? 0 : 1;
  if (o.wire_errors > 0) return 2;
  if (o.verify_errors > 0) return 3;
  return 0;
}

}  // namespace reo::loadgen
