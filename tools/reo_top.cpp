// reo_top: live terminal dashboard for a running reo_server.
//
// Polls the in-band admin plane (HEALTH + STATS + SERIES) once per
// interval and redraws: serving status, per-window rates with sparklines,
// latency percentiles per op type, the paper's wear/miss ratios, and the
// per-stage latency attribution from sampled traces. Examples:
//
//   reo_top --port 9555
//   reo_top --port-file port.txt --interval-ms 500
//   reo_top --port-file port.txt --iterations 2 --plain   # CI / logs
//   reo_top --endpoints 127.0.0.1:9555,127.0.0.1:9556     # cluster view
//
// With --endpoints the dashboard switches to cluster mode: one column
// row per node (status, connections, requests, wire errors, ops/s) plus
// a merged totals row whose sparkline is the element-wise sum of the
// nodes' per-window rates. Down nodes render as "down" and are re-dialed
// every frame, so a killed node's recovery is visible live.
//
// Plain mode appends frames instead of redrawing in place, so the output
// is greppable. Exit code 0 after --iterations frames (or on server
// close), 2 on usage/connect errors.
#include <poll.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster_initiator.h"
#include "common/file_util.h"
#include "server/socket_initiator.h"
#include "telemetry/json_scan.h"

using namespace reo;

namespace {

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --host ADDR        server address (default 127.0.0.1)\n"
      "  --port N           server port\n"
      "  --port-file PATH   read the port from PATH\n"
      "  --endpoints LIST   cluster mode: host:port,... — per-node rows\n"
      "                     plus a merged totals row\n"
      "  --interval-ms N    poll/redraw interval (default 1000)\n"
      "  --iterations N     frames to draw, 0 = until interrupted"
      " (default 0)\n"
      "  --windows N        sparkline width in series windows (default 30)\n"
      "  --plain            no ANSI clear; append frames (for CI logs)\n",
      argv0);
}

/// Eight-level unicode sparkline of the last `width` values. NaN (empty
/// window) renders as a space.
std::string Sparkline(const std::vector<double>& v, size_t width) {
  static const char* kLevels[8] = {"▁", "▂", "▃", "▄",
                                   "▅", "▆", "▇", "█"};
  size_t first = v.size() > width ? v.size() - width : 0;
  double hi = 0;
  for (size_t i = first; i < v.size(); ++i) {
    if (!std::isnan(v[i]) && v[i] > hi) hi = v[i];
  }
  std::string out;
  for (size_t i = first; i < v.size(); ++i) {
    if (std::isnan(v[i])) {
      out += ' ';
    } else {
      int level = hi > 0 ? static_cast<int>(v[i] / hi * 7.999) : 0;
      out += kLevels[level];
    }
  }
  return out;
}

/// 12.3k / 4.5M style humanized count.
std::string Human(double v) {
  char buf[32];
  if (std::isnan(v)) return "-";
  double a = std::fabs(v);
  if (a >= 1e9) std::snprintf(buf, sizeof(buf), "%.2fG", v / 1e9);
  else if (a >= 1e6) std::snprintf(buf, sizeof(buf), "%.2fM", v / 1e6);
  else if (a >= 1e3) std::snprintf(buf, sizeof(buf), "%.1fk", v / 1e3);
  else std::snprintf(buf, sizeof(buf), "%.0f", v);
  return buf;
}

double LastOr(const std::vector<double>& v, double fallback) {
  for (size_t i = v.size(); i > 0; --i) {
    if (!std::isnan(v[i - 1])) return v[i - 1];
  }
  return fallback;
}

/// Pulls one series column out of a parsed SERIES reply.
std::vector<double> Column(const JsonDoc& doc, std::string_view name) {
  return doc.NumberArray(doc.Find({"series", name}));
}

double NumberAt(const JsonDoc& doc, std::initializer_list<std::string_view> p,
                double fallback = 0) {
  int node = doc.Find(p);
  return node == JsonDoc::kInvalid ? fallback : doc.number(node);
}

/// Element-wise sum of per-node series columns, aligned at the tail
/// (nodes restarted mid-run have shorter histories).
std::vector<double> SumTail(const std::vector<std::vector<double>>& cols) {
  size_t len = 0;
  for (const auto& c : cols) {
    if (c.size() > len) len = c.size();
  }
  std::vector<double> out(len, NAN);
  for (const auto& c : cols) {
    for (size_t i = 0; i < c.size(); ++i) {
      size_t j = len - c.size() + i;
      if (std::isnan(c[i])) continue;
      out[j] = std::isnan(out[j]) ? c[i] : out[j] + c[i];
    }
  }
  return out;
}

/// Cluster dashboard: one row per node plus a merged totals row. Nodes
/// that fail to connect or answer render as "down" and are re-dialed
/// next frame — the loop never exits just because a node died.
int RunClusterTop(const std::vector<ClusterEndpoint>& endpoints,
                  uint32_t interval_ms, uint64_t iterations, size_t width,
                  bool plain) {
  const size_t n = endpoints.size();
  std::vector<std::unique_ptr<SocketInitiator>> clients(n);
  for (uint64_t frame = 0; iterations == 0 || frame < iterations; ++frame) {
    struct Row {
      bool up = false;
      std::string status = "down";
      double uptime = NAN, conns = 0, requests = 0, responses = 0;
      double wire_errors = 0;
      double ops_rate = NAN;
      std::vector<double> ops_col;
    };
    std::vector<Row> rows(n);
    size_t up = 0;
    for (size_t i = 0; i < n; ++i) {
      if (!clients[i]) {
        SocketInitiatorConfig cfg;
        cfg.connect_timeout_ms = 2000;
        cfg.receive_timeout_ms = 2000;
        auto c = std::make_unique<SocketInitiator>(cfg);
        if (c->Connect(endpoints[i].host, endpoints[i].port).ok()) {
          clients[i] = std::move(c);
        }
      }
      if (!clients[i]) continue;
      auto health = clients[i]->AdminRoundtrip(AdminOp::kHealth);
      auto series = clients[i]->AdminRoundtrip(
          AdminOp::kSeries, static_cast<uint32_t>(width));
      if (!health.ok() || health->status != 0) {
        clients[i].reset();  // re-dial next frame
        continue;
      }
      auto hdoc = JsonDoc::Parse(health->json);
      if (!hdoc) {
        clients[i].reset();
        continue;
      }
      Row& r = rows[i];
      r.up = true;
      ++up;
      r.status = hdoc->str(hdoc->member(hdoc->root(), "status"));
      r.uptime = NumberAt(*hdoc, {"uptime_ms"}, NAN);
      r.conns = NumberAt(*hdoc, {"connections"});
      r.requests = NumberAt(*hdoc, {"requests"});
      r.responses = NumberAt(*hdoc, {"responses"});
      r.wire_errors = NumberAt(*hdoc, {"crc_errors"}) +
                      NumberAt(*hdoc, {"frame_errors"}) +
                      NumberAt(*hdoc, {"decode_errors"});
      if (series.ok() && series->status == 0) {
        if (auto rdoc = JsonDoc::Parse(series->json)) {
          double window_ms = NumberAt(*rdoc, {"window_ms"}, 1000);
          double scale = window_ms > 0 ? 1000.0 / window_ms : 1.0;
          r.ops_col = Column(*rdoc, "server.requests");
          for (double& v : r.ops_col) v *= scale;
          r.ops_rate = LastOr(r.ops_col, NAN);
        }
      }
    }
    if (up == 0 && frame == 0) {
      std::fprintf(stderr, "no cluster node reachable\n");
      return 2;
    }

    if (!plain) std::printf("\x1b[2J\x1b[H");
    std::printf("reo_top — cluster %zu nodes, %zu up\n", n, up);
    std::printf("%-4s %-21s %-8s %9s %6s %9s %9s %5s %9s\n", "node",
                "endpoint", "status", "up(ms)", "conns", "reqs", "resps",
                "werr", "ops/s");
    Row sum;
    std::vector<std::vector<double>> ops_cols;
    for (size_t i = 0; i < n; ++i) {
      const Row& r = rows[i];
      char ep[64];
      std::snprintf(ep, sizeof(ep), "%s:%u", endpoints[i].host.c_str(),
                    endpoints[i].port);
      std::printf("%-4zu %-21s %-8s %9s %6.0f %9s %9s %5.0f %9s\n", i, ep,
                  r.status.c_str(), Human(r.uptime).c_str(), r.conns,
                  Human(r.requests).c_str(), Human(r.responses).c_str(),
                  r.wire_errors, Human(r.ops_rate).c_str());
      if (!r.up) continue;
      sum.conns += r.conns;
      sum.requests += r.requests;
      sum.responses += r.responses;
      sum.wire_errors += r.wire_errors;
      if (!r.ops_col.empty()) ops_cols.push_back(r.ops_col);
    }
    std::vector<double> merged_ops = SumTail(ops_cols);
    std::printf("%-4s %-21s %-8s %9s %6.0f %9s %9s %5.0f %9s  %s\n", "sum",
                "", up == n ? "all-up" : "degraded", "", sum.conns,
                Human(sum.requests).c_str(), Human(sum.responses).c_str(),
                sum.wire_errors, Human(LastOr(merged_ops, NAN)).c_str(),
                Sparkline(merged_ops, width).c_str());
    std::fflush(stdout);
    if (iterations == 0 || frame + 1 < iterations) {
      (void)poll(nullptr, 0, static_cast<int>(interval_ms));
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::string port_file;
  std::string endpoints_arg;
  uint16_t port = 0;
  uint32_t interval_ms = 1000;
  uint64_t iterations = 0;
  size_t width = 30;
  bool plain = false;

  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--host")) host = next();
    else if (!std::strcmp(argv[i], "--port"))
      port = static_cast<uint16_t>(std::strtoul(next(), nullptr, 10));
    else if (!std::strcmp(argv[i], "--port-file")) port_file = next();
    else if (!std::strcmp(argv[i], "--endpoints")) endpoints_arg = next();
    else if (!std::strcmp(argv[i], "--interval-ms"))
      interval_ms = static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    else if (!std::strcmp(argv[i], "--iterations"))
      iterations = std::strtoull(next(), nullptr, 10);
    else if (!std::strcmp(argv[i], "--windows"))
      width = std::strtoull(next(), nullptr, 10);
    else if (!std::strcmp(argv[i], "--plain")) plain = true;
    else if (!std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h")) {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      Usage(argv[0]);
      return 2;
    }
  }
  if (!endpoints_arg.empty()) {
    std::vector<ClusterEndpoint> endpoints =
        ParseClusterEndpoints(endpoints_arg);
    if (endpoints.empty()) {
      std::fprintf(stderr, "bad --endpoints list: %s\n", endpoints_arg.c_str());
      return 2;
    }
    if (endpoints.size() > 1) {
      return RunClusterTop(endpoints, interval_ms, iterations, width, plain);
    }
    host = endpoints[0].host;  // single endpoint: full detail view
    port = endpoints[0].port;
  }
  if (!port_file.empty()) {
    auto text = ReadFileToString(port_file);
    if (!text.ok()) {
      std::fprintf(stderr, "port file: %s\n",
                   text.status().to_string().c_str());
      return 2;
    }
    port = static_cast<uint16_t>(std::strtoul(text->c_str(), nullptr, 10));
  }
  if (port == 0) {
    std::fprintf(stderr, "need --port, --port-file, or --endpoints\n");
    return 2;
  }

  SocketInitiatorConfig cfg;
  cfg.connect_timeout_ms = 5000;
  cfg.receive_timeout_ms = 5000;
  SocketInitiator client(cfg);
  Status st = client.Connect(host, port);
  if (!st.ok()) {
    std::fprintf(stderr, "connect %s:%u: %s\n", host.c_str(), port,
                 st.to_string().c_str());
    return 2;
  }

  for (uint64_t frame = 0; iterations == 0 || frame < iterations; ++frame) {
    auto health = client.AdminRoundtrip(AdminOp::kHealth);
    auto stats = client.AdminRoundtrip(AdminOp::kStats);
    auto series = client.AdminRoundtrip(
        AdminOp::kSeries, static_cast<uint32_t>(width));
    if (!health.ok() || !stats.ok() || !series.ok()) {
      const Status& bad = !health.ok()   ? health.status()
                          : !stats.ok() ? stats.status()
                                        : series.status();
      std::fprintf(stderr, "poll failed: %s\n", bad.to_string().c_str());
      return frame > 0 ? 0 : 2;  // server drained mid-watch: clean exit
    }
    auto hdoc = JsonDoc::Parse(health->json);
    auto sdoc = stats->status == 0 ? JsonDoc::Parse(stats->json)
                                   : std::nullopt;
    auto rdoc = series->status == 0 ? JsonDoc::Parse(series->json)
                                    : std::nullopt;
    if (!hdoc) {
      std::fprintf(stderr, "health reply did not parse\n");
      return 2;
    }

    if (!plain) std::printf("\x1b[2J\x1b[H");
    std::printf("reo_top — %s:%u   status=%s   up=%s ms   conns=%s\n",
                host.c_str(), port,
                hdoc->str(hdoc->member(hdoc->root(), "status")).c_str(),
                Human(NumberAt(*hdoc, {"uptime_ms"})).c_str(),
                Human(NumberAt(*hdoc, {"connections"})).c_str());
    std::printf("requests=%s responses=%s   wire errors: crc=%.0f frame=%.0f"
                " decode=%.0f\n",
                Human(NumberAt(*hdoc, {"requests"})).c_str(),
                Human(NumberAt(*hdoc, {"responses"})).c_str(),
                NumberAt(*hdoc, {"crc_errors"}),
                NumberAt(*hdoc, {"frame_errors"}),
                NumberAt(*hdoc, {"decode_errors"}));

    if (rdoc) {
      double window_ms = NumberAt(*rdoc, {"window_ms"}, 1000);
      double scale = window_ms > 0 ? 1000.0 / window_ms : 1.0;
      auto rate_row = [&](const char* label, std::string_view column,
                          double per_second_scale) {
        std::vector<double> v = Column(*rdoc, column);
        if (v.empty()) return;
        std::printf("  %-14s %8s/s  %s\n", label,
                    Human(LastOr(v, 0) * per_second_scale).c_str(),
                    Sparkline(v, width).c_str());
      };
      std::printf("\nper-window rates (window %.0f ms, %.0f skipped)\n",
                  window_ms, NumberAt(*rdoc, {"skipped_windows"}));
      rate_row("ops", "server.requests", scale);
      rate_row("bytes in", "server.bytes_in", scale);
      rate_row("bytes out", "server.bytes_out", scale);

      auto gauge_row = [&](const char* label, std::string_view column,
                           const char* unit) {
        std::vector<double> v = Column(*rdoc, column);
        if (v.empty()) return;
        std::printf("  %-14s %8s%s   %s\n", label,
                    Human(LastOr(v, NAN)).c_str(), unit,
                    Sparkline(v, width).c_str());
      };
      std::printf("latency (per window)\n");
      gauge_row("read p50", "server.latency.read_us.p50", "us");
      gauge_row("read p99", "server.latency.read_us.p99", "us");
      gauge_row("write p50", "server.latency.write_us.p50", "us");
      gauge_row("write p99", "server.latency.write_us.p99", "us");
      std::printf("ratios\n");
      gauge_row("read miss", "osd.read_miss_ratio", "  ");
      gauge_row("flash wr/op", "flash.writes_per_op", "  ");
      gauge_row("dram hit", "dram.hit_ratio", "  ");
    }

    if (sdoc) {
      // Stage attribution: mean microseconds per span, from the sampled
      // trace histograms. The transport row is the end-to-end envelope.
      int hists = sdoc->member(sdoc->root(), "histograms");
      if (hists != JsonDoc::kInvalid) {
        std::printf("\nstage attribution (sampled, mean us x count)\n");
        static const char* kStages[] = {
            "stage.transport.span_us",      "stage.osd_target.span_us",
            "stage.cache_manager.span_us",  "stage.data_plane.span_us",
            "stage.reconstruction.span_us", "stage.flash.span_us",
            "stage.backend.span_us"};
        for (const char* name : kStages) {
          int h = sdoc->member(hists, name);
          if (h == JsonDoc::kInvalid) continue;
          double count = NumberAt(*sdoc, {"histograms", name, "count"});
          if (count == 0) continue;
          std::printf("  %-30s %9.1f x %-8s (p99 %s)\n", name,
                      NumberAt(*sdoc, {"histograms", name, "mean"}),
                      Human(count).c_str(),
                      Human(NumberAt(*sdoc, {"histograms", name, "p99"}))
                          .c_str());
        }
      }
    }
    std::fflush(stdout);
    if (iterations == 0 || frame + 1 < iterations) {
      (void)poll(nullptr, 0, static_cast<int>(interval_ms));
    }
  }
  return 0;
}
