// bench_validate: checks that a BENCH_serve.json report (as written by
// reo_loadgen --bench-out or openloop_latency --bench-out) is well-formed
// JSON, carries the expected schema tag, and has every required field with
// a sane value. Dependency-free (same pattern as trace_validate); used by
// the CI bench-smoke job. Exits non-zero with a message on any problem.
//
//   bench_validate BENCH_serve.json [--min-ops N] [--min-throughput F]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/file_util.h"
#include "telemetry/bench_json.h"
#include "trace/json_lint.h"

using namespace reo;

namespace {

/// Finds `"key":` at any nesting level and parses the number after it.
/// The schema is flat and its keys are unique, so this is exact for
/// well-formed reports (well-formedness is established by LintJson first).
bool FindNumber(const std::string& text, const char* key, double* out) {
  std::string needle = std::string("\"") + key + "\":";
  size_t pos = text.find(needle);
  if (pos == std::string::npos) return false;
  const char* p = text.c_str() + pos + needle.size();
  char* end = nullptr;
  double v = std::strtod(p, &end);
  if (end == p) return false;
  *out = v;
  return true;
}

bool HasStringField(const std::string& text, const char* key) {
  std::string needle = std::string("\"") + key + "\": \"";
  return text.find(needle) != std::string::npos;
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = nullptr;
  double min_ops = 1;
  double min_throughput = 0.0;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--min-ops")) {
      min_ops = std::atof(next());
    } else if (!std::strcmp(argv[i], "--min-throughput")) {
      min_throughput = std::atof(next());
    } else if (!std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h")) {
      std::printf("usage: %s FILE [--min-ops N] [--min-throughput F]\n",
                  argv[0]);
      return 0;
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "unexpected argument %s\n", argv[i]);
      return 2;
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr, "usage: %s FILE [--min-ops N] [--min-throughput F]\n",
                 argv[0]);
    return 2;
  }

  auto contents = ReadFileToString(path);
  if (!contents.ok()) {
    std::fprintf(stderr, "%s: %s\n", path,
                 contents.status().to_string().c_str());
    return 1;
  }
  JsonLintResult lint = LintJson(*contents);
  if (!lint.ok) {
    std::fprintf(stderr, "%s: invalid JSON at byte %zu: %s\n", path,
                 lint.error_offset, lint.error.c_str());
    return 1;
  }
  const std::string& text = *contents;
  std::string schema_tag =
      std::string("\"schema\": \"") + kBenchServeSchema + "\"";
  if (text.find(schema_tag) == std::string::npos) {
    std::fprintf(stderr, "%s: missing schema tag %s\n", path,
                 kBenchServeSchema);
    return 1;
  }
  for (const char* key : {"bench", "workload"}) {
    if (!HasStringField(text, key)) {
      std::fprintf(stderr, "%s: missing string field \"%s\"\n", path, key);
      return 1;
    }
  }
  struct Field {
    const char* key;
    double min;  ///< inclusive lower bound for a sane report
  };
  const Field required[] = {
      {"ops", min_ops},
      {"wall_seconds", 0.0},
      {"cpu_seconds", 0.0},
      {"throughput_ops_per_sec", min_throughput},
      {"p50", 0.0},
      {"p99", 0.0},
      {"p999", 0.0},
      {"bytes_per_op", 0.0},
      {"allocs_per_op", -1.0},  // -1 = legitimately unmeasured
  };
  for (const Field& f : required) {
    double v = 0;
    if (!FindNumber(text, f.key, &v)) {
      std::fprintf(stderr, "%s: missing numeric field \"%s\"\n", path, f.key);
      return 1;
    }
    if (v < f.min) {
      std::fprintf(stderr, "%s: field \"%s\" = %g below minimum %g\n", path,
                   f.key, v, f.min);
      return 1;
    }
  }
  double p50 = 0, p99 = 0;
  (void)FindNumber(text, "p50", &p50);
  (void)FindNumber(text, "p99", &p99);
  if (p99 < p50) {
    std::fprintf(stderr, "%s: p99 (%g) < p50 (%g)\n", path, p99, p50);
    return 1;
  }
  std::printf("%s: valid %s report\n", path, kBenchServeSchema);
  return 0;
}
