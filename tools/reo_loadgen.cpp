// reo_loadgen: closed-loop load generator for reo_server.
//
// Opens N connections, each driven by its own thread in a closed loop
// (one outstanding request per connection — the paper's replay style,
// §VI.A), issuing a configurable read/write mix over a Zipf-popular
// object set (common/zipf). Latencies land in common/histogram
// instances, are merged into a MetricRegistry, and the summary
// (throughput, p50/p99/p999) plus the JSON snapshot are reported from
// that registry. Exits non-zero if the wire saw any frame/CRC/decode
// error, so CI can assert a clean run. Examples:
//
//   reo_loadgen --port 9555 --connections 8 --requests 5000
//   reo_loadgen --port $(cat port.txt) --write-ratio 0.3 --zipf 0.9
//       --stats-out loadgen_stats.json
//
// Crash testing (used by the CI crash-recovery smoke job):
//
//   # classify everything dirty, SIGKILL the server after 200 acked burst
//   # writes, and record which writes were acknowledged:
//   reo_loadgen --port N --write-class 1 --write-ratio 1.0
//       --kill-after 200 --kill-pid-file server.pid --ack-manifest acks.txt
//   # after restart: verify every acknowledged object is readable with
//   # the correct contents (exit 4 on any loss):
//   reo_loadgen --port N --verify-manifest acks.txt
//
// Cluster mode (used by the CI cluster-smoke job): workers route through
// a consistent-hash ClusterInitiator over the listed nodes; --kill-node
// SIGKILLs one node mid-burst, after which the loadgen runs the
// cross-node differentiated recovery (survivor OWNERS -> backend refetch
// of class 0/1) and drain-verifies every acked object per class:
//
//   reo_loadgen --cluster 127.0.0.1:9551,127.0.0.1:9552,127.0.0.1:9553
//       --class-cycle --kill-node 1 --kill-after 200
//       --kill-pid-file node1.pid
#include <signal.h>
#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <new>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster_initiator.h"
#include "cluster/recovery_driver.h"
#include "common/file_util.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/zipf.h"
#include "fault/fault_spec.h"
#include "loadgen_exit.h"
#include "osd/control_protocol.h"
#include "server/socket_initiator.h"
#include "telemetry/bench_json.h"
#include "telemetry/metric_registry.h"

// --- Allocation counting ----------------------------------------------------
//
// The bench report's allocations/op comes from a global operator new
// counter: every heap allocation in this binary (workers, framing, the
// initiator) bumps it. Relaxed atomics keep the overhead to one uncontended
// RMW per allocation — noise next to malloc itself.

namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}

void* operator new[](std::size_t size, const std::nothrow_t& nt) noexcept {
  return ::operator new(size, nt);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

using namespace reo;

namespace {

/// user+system CPU seconds consumed by this process so far.
double ProcessCpuSeconds() {
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
  auto tv = [](const timeval& t) {
    return static_cast<double>(t.tv_sec) +
           static_cast<double>(t.tv_usec) / 1e6;
  };
  return tv(ru.ru_utime) + tv(ru.ru_stime);
}

struct Options {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  size_t connections = 4;
  uint64_t requests = 2000;  ///< per connection
  double write_ratio = 0.3;
  uint32_t objects = 1000;
  double zipf_skew = 0.9;
  uint64_t object_bytes = 64 * 1024;
  uint64_t seed = 42;
  /// Shard count of the server under test (reo_server --shards). Purely
  /// descriptive: it labels the bench report / summary so scaling-curve
  /// runs are self-describing. The wire protocol is shard-transparent.
  size_t shards = 1;
  bool verify = true;
  std::string stats_out;
  std::string bench_out;  ///< write BENCH_serve.json here (see bench_json.h)

  // Crash-testing modes.
  int write_class = -1;        ///< classify every object via #SETID# (-1: off)
  uint64_t kill_after = 0;     ///< SIGKILL the server after N acked writes
  std::string kill_pid_file;   ///< where the server's pid lives
  std::string ack_manifest;    ///< write acknowledged ranks here
  std::string verify_manifest; ///< verify-only mode: read ranks from here

  /// Chaos mode: the server is running with `reo_server --fault-spec` on
  /// the same spec file. The loadgen turns on client-side partial-failure
  /// tolerance (receive deadlines, reconnect-retry, bounded op retries)
  /// and finishes with a drain-verify pass proving that no acknowledged
  /// write was lost (exit 4) or corrupted (exit 3) despite the injection.
  bool chaos = false;

  /// Cluster mode: route every request through a ClusterInitiator over
  /// these nodes instead of one SocketInitiator (--cluster host:port,...).
  std::vector<ClusterEndpoint> cluster;
  /// Classify rank r into class r % 4 during populate, so every
  /// redundancy class is represented in the node-kill drill.
  bool class_cycle = false;
  /// Ring index of the node --kill-after SIGKILLs (its pid comes from
  /// --kill-pid-file). After the burst the loadgen announces the death,
  /// runs the differentiated cross-node recovery, and drain-verifies.
  int kill_node = -1;
};

/// The redundancy class `rank` was assigned at populate, -1 = never
/// classified (server default). The drill's per-class verdict hangs off
/// this: 0/1 must survive a node kill, 2/3 may degrade to clean misses.
int ClassOfRank(const Options& opt, uint32_t rank) {
  if (opt.class_cycle) return static_cast<int>(rank % 4);
  return opt.write_class;
}

/// Client-side tolerance posture for chaos runs.
SocketInitiatorConfig ChaosInitiatorConfig(const Options& opt, uint64_t salt) {
  SocketInitiatorConfig cfg;
  cfg.receive_timeout_ms = 15000;
  cfg.max_retries = 4;
  cfg.retry_backoff_ms = 20;
  cfg.seed = opt.seed + salt;
  return cfg;
}

/// Acknowledged-write bookkeeping shared by the worker threads.
std::atomic<uint64_t> g_acked_writes{0};
std::atomic<bool> g_killed{false};

/// SIGKILLs the process named in `opt.kill_pid_file` (crash testing).
void KillServer(const Options& opt) {
  auto pid_text = ReadFileToString(opt.kill_pid_file);
  if (!pid_text.ok()) {
    std::fprintf(stderr, "kill: cannot read %s: %s\n",
                 opt.kill_pid_file.c_str(),
                 pid_text.status().to_string().c_str());
    return;
  }
  long pid = std::strtol(pid_text->c_str(), nullptr, 10);
  if (pid <= 1) {
    std::fprintf(stderr, "kill: implausible pid %ld\n", pid);
    return;
  }
  ::kill(static_cast<pid_t>(pid), SIGKILL);
  g_killed.store(true);
  std::printf("SIGKILL sent to server pid %ld after %llu acked writes\n", pid,
              static_cast<unsigned long long>(g_acked_writes.load()));
  std::fflush(stdout);
}

/// Everything one worker thread produces; merged on the main thread
/// after join (MetricRegistry itself is single-threaded by design).
struct WorkerResult {
  Histogram read_us;
  Histogram write_us;
  Histogram all_us;
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t sense_errors = 0;
  uint64_t verify_errors = 0;
  std::vector<uint32_t> acked_ranks;  ///< writes the server acknowledged
  SocketInitiatorStats wire;
  ClusterInitiatorStats cluster;  ///< cluster mode only (failovers etc.)
  Status fatal = Status::Ok();
};

ObjectId IdForRank(uint32_t rank) {
  // Skip past the exofs reserved metadata oids (Table I: 0x10000-0x10004).
  return ObjectId{kFirstUserId, kFirstUserId + 0x1000 + rank};
}

/// Deterministic per-object payload so any reader can verify contents.
std::vector<uint8_t> PayloadFor(uint32_t rank, uint64_t bytes) {
  std::vector<uint8_t> data(bytes);
  Pcg32 rng(/*seed=*/rank + 1, /*stream=*/0x9e3779b9);
  for (auto& b : data) b = static_cast<uint8_t>(rng.Next());
  return data;
}

OsdCommand MakeWrite(uint32_t rank, uint64_t bytes) {
  OsdCommand c;
  c.op = OsdOp::kWrite;
  c.id = IdForRank(rank);
  c.logical_size = bytes;
  c.data = PayloadFor(rank, bytes);
  return c;
}

/// Per-rank payload cache for the timed run. PayloadFor is deterministic
/// but costs a PCG call per byte — regenerating 64 KiB per read-verify
/// (and per write) burned more client CPU than the whole wire round trip,
/// so the harness was largely measuring itself. Built once before the
/// clock starts; shared read-only across workers.
class PayloadCache {
 public:
  PayloadCache(uint32_t objects, uint64_t bytes) {
    payloads_.reserve(objects);
    for (uint32_t rank = 0; rank < objects; ++rank) {
      payloads_.push_back(PayloadFor(rank, bytes));
    }
  }
  std::span<const uint8_t> Of(uint32_t rank) const { return payloads_[rank]; }

 private:
  std::vector<std::vector<uint8_t>> payloads_;
};

void Worker(const Options& opt, const ZipfSampler& zipf,
            const PayloadCache& payloads, size_t index, WorkerResult* out) {
  SocketInitiator client(opt.chaos
                             ? ChaosInitiatorConfig(opt, 0x100 + index)
                             : SocketInitiatorConfig{});
  Status st = client.Connect(opt.host, opt.port);
  if (!st.ok()) {
    out->fatal = st;
    return;
  }
  Pcg32 rng(opt.seed + 0x1000 + index, /*stream=*/index);
  for (uint64_t i = 0; i < opt.requests; ++i) {
    uint32_t rank = zipf.Sample(rng);
    bool is_write = rng.NextDouble() < opt.write_ratio;
    OsdCommand cmd;
    if (is_write) {
      std::span<const uint8_t> p = payloads.Of(rank);
      cmd.op = OsdOp::kWrite;
      cmd.id = IdForRank(rank);
      cmd.logical_size = p.size();
      cmd.data.assign(p.begin(), p.end());
    } else {
      cmd.op = OsdOp::kRead;
      cmd.id = IdForRank(rank);
    }
    auto start = std::chrono::steady_clock::now();
    OsdResponse resp = client.Roundtrip(cmd);
    double us = std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    if (!client.connected()) {
      // In chaos mode a dropped session is a tolerable fault: re-establish
      // and keep going (the failed op already counted as a sense error).
      if (opt.chaos && client.Connect(opt.host, opt.port).ok()) {
        ++out->sense_errors;
        continue;
      }
      // In kill mode the server vanishing is the point, not a failure.
      if (!g_killed.load()) {
        out->fatal = Status{ErrorCode::kUnavailable, "connection lost mid-run"};
      }
      break;
    }
    (is_write ? out->write_us : out->read_us).Add(us);
    out->all_us.Add(us);
    ++(is_write ? out->writes : out->reads);
    if (is_write && resp.ok()) {
      // This response means the server committed (and, for replicated
      // classes, fsynced) the write before answering: from here on a crash
      // must not lose it. Record it, and pull the trigger at the threshold.
      out->acked_ranks.push_back(rank);
      uint64_t acked = g_acked_writes.fetch_add(1) + 1;
      if (opt.kill_after > 0 && acked == opt.kill_after) KillServer(opt);
    }
    if (!resp.ok()) {
      if (!g_killed.load()) ++out->sense_errors;
    } else if (!is_write && opt.verify) {
      // The server may return chunk-padded payloads; the logical-size
      // prefix must match exactly. Compare against the cache — no
      // allocation or regeneration on the timed path.
      std::span<const uint8_t> want = payloads.Of(rank);
      if (resp.data.size() < want.size() ||
          !std::equal(want.begin(), want.end(), resp.data.begin())) {
        ++out->verify_errors;
      }
    }
  }
  out->wire = client.stats();
}

/// One command with bounded application-level retries (chaos mode only).
/// Loadgen write payloads are content-stable per rank, so replaying any of
/// these commands is safe.
OsdResponse RoundtripWithRetry(const Options& opt, SocketInitiator& client,
                               const OsdCommand& cmd, int attempts) {
  OsdResponse resp = client.Roundtrip(cmd);
  for (int r = 1; !resp.ok() && opt.chaos && r < attempts; ++r) {
    if (!client.connected() && !client.Connect(opt.host, opt.port).ok()) break;
    resp = client.Roundtrip(cmd);
  }
  return resp;
}

/// Reads back every acknowledged write after the chaos run and proves the
/// reliability contract: nothing acked may be missing or wrong, no matter
/// what the fault spec injected underneath.
int ChaosDrainVerify(const Options& opt, const std::set<uint32_t>& acked) {
  SocketInitiator client(ChaosInitiatorConfig(opt, 0xd7a1));
  Status st = client.Connect(opt.host, opt.port);
  if (!st.ok()) {
    std::fprintf(stderr, "chaos drain-verify connect failed: %s\n",
                 st.to_string().c_str());
    return 1;
  }
  uint64_t missing = 0, mismatched = 0;
  for (uint32_t rank : acked) {
    OsdCommand read;
    read.op = OsdOp::kRead;
    read.id = IdForRank(rank);
    OsdResponse resp = RoundtripWithRetry(opt, client, read, 6);
    if (!resp.ok()) {
      ++missing;
      std::fprintf(stderr, "rank %u: acked write unreadable under chaos"
                   " (sense %s)\n", rank,
                   std::string(to_string(resp.sense)).c_str());
      continue;
    }
    std::vector<uint8_t> want = PayloadFor(rank, opt.object_bytes);
    if (resp.data.size() < want.size() ||
        !std::equal(want.begin(), want.end(), resp.data.begin())) {
      ++mismatched;
      std::fprintf(stderr, "rank %u: payload corrupt under chaos\n", rank);
    }
  }
  std::printf("chaos drain-verify: %zu acked objects, %llu missing,"
              " %llu corrupt\n", acked.size(),
              static_cast<unsigned long long>(missing),
              static_cast<unsigned long long>(mismatched));
  if (mismatched > 0) return 3;
  if (missing > 0) return 4;
  return 0;
}

/// Assigns `class_id` to the object via the #SETID# control channel, the
/// same path the cache manager's classifier uses.
Status Classify(const Options& opt, SocketInitiator& client, uint32_t rank,
                uint8_t class_id) {
  OsdCommand ctl;
  ctl.op = OsdOp::kWrite;
  ctl.id = kControlObject;
  ctl.data = EncodeControlMessage(
      SetIdCommand{.target = IdForRank(rank), .class_id = class_id});
  ctl.logical_size = ctl.data.size();
  if (!RoundtripWithRetry(opt, client, ctl, 4).ok()) {
    return Status{ErrorCode::kInternal,
                  "SETID failed for rank " + std::to_string(rank)};
  }
  return Status::Ok();
}

/// Writes every object once so the measured phase reads warm data.
/// Populate writes count as acknowledged too: the server committed them.
Status Populate(const Options& opt, std::vector<uint32_t>* acked_ranks) {
  SocketInitiator client(opt.chaos ? ChaosInitiatorConfig(opt, 0x90b)
                                   : SocketInitiatorConfig{});
  REO_RETURN_IF_ERROR(client.Connect(opt.host, opt.port));

  // FORMAT also creates the first user partition (exofs convention).
  OsdCommand format;
  format.op = OsdOp::kFormat;
  format.capacity_bytes = 4 * opt.objects * opt.object_bytes;
  if (!client.Roundtrip(format).ok()) {
    return Status{ErrorCode::kInternal, "FORMAT failed"};
  }

  for (uint32_t rank = 0; rank < opt.objects; ++rank) {
    OsdCommand create;
    create.op = OsdOp::kCreate;
    create.id = IdForRank(rank);
    create.logical_size = opt.object_bytes;
    if (!RoundtripWithRetry(opt, client, create, 4).ok()) {
      return Status{ErrorCode::kInternal,
                    "CREATE failed for rank " + std::to_string(rank)};
    }
    int cls = ClassOfRank(opt, rank);
    if (cls >= 0) {
      REO_RETURN_IF_ERROR(
          Classify(opt, client, rank, static_cast<uint8_t>(cls)));
    }
    OsdResponse wr =
        RoundtripWithRetry(opt, client, MakeWrite(rank, opt.object_bytes), 4);
    if (!wr.ok()) {
      return Status{ErrorCode::kInternal,
                    "populate WRITE failed for rank " + std::to_string(rank) +
                        " (sense " + std::string(to_string(wr.sense)) + ")"};
    }
    if (acked_ranks != nullptr) acked_ranks->push_back(rank);
  }
  const SocketInitiatorStats& w = client.stats();
  if (w.crc_errors + w.frame_errors + w.decode_errors > 0) {
    return Status{ErrorCode::kCorrupted, "wire errors during populate"};
  }
  return Status::Ok();
}

// --- Cluster mode -----------------------------------------------------------

/// Cluster client posture: receive deadlines so a killed node fails fast
/// instead of hanging a worker; per-instance seeds keep the reconnect
/// jitter streams distinct (on top of the per-node streams inside).
ClusterInitiatorConfig ClusterConfigFor(const Options& opt, uint64_t salt) {
  ClusterInitiatorConfig cfg;
  cfg.session.receive_timeout_ms = 15000;
  cfg.session.retry_backoff_ms = 20;
  cfg.session.seed = opt.seed + salt;
  return cfg;
}

/// Cluster populate: FORMAT fans out to every member; each object is
/// then created + classified (placing its #OWNER# hint on the ring
/// successor) + written on its ring owner. Runs pre-kill on a healthy
/// cluster, so failures are setup errors, not tolerated faults.
Status ClusterPopulate(const Options& opt, std::vector<uint32_t>* acked_ranks) {
  ClusterInitiator cluster(opt.cluster, ClusterConfigFor(opt, 0x90b));
  REO_RETURN_IF_ERROR(cluster.ConnectAll());
  OsdCommand format;
  format.op = OsdOp::kFormat;
  format.capacity_bytes = 4 * opt.objects * opt.object_bytes;
  if (!cluster.Roundtrip(format).ok()) {
    return Status{ErrorCode::kInternal, "cluster FORMAT failed"};
  }
  for (uint32_t rank = 0; rank < opt.objects; ++rank) {
    OsdCommand create;
    create.op = OsdOp::kCreate;
    create.id = IdForRank(rank);
    create.logical_size = opt.object_bytes;
    if (!cluster.Roundtrip(create).ok()) {
      return Status{ErrorCode::kInternal,
                    "cluster CREATE failed for rank " + std::to_string(rank)};
    }
    int cls = ClassOfRank(opt, rank);
    if (cls >= 0 &&
        !cluster.Classify(IdForRank(rank), static_cast<uint8_t>(cls)).ok()) {
      return Status{ErrorCode::kInternal,
                    "cluster SETID failed for rank " + std::to_string(rank)};
    }
    if (!cluster.Roundtrip(MakeWrite(rank, opt.object_bytes)).ok()) {
      return Status{ErrorCode::kInternal,
                    "cluster populate WRITE failed for rank " +
                        std::to_string(rank)};
    }
    if (acked_ranks != nullptr) acked_ranks->push_back(rank);
  }
  SocketInitiatorStats w = cluster.WireStats();
  if (w.crc_errors + w.frame_errors + w.decode_errors > 0) {
    return Status{ErrorCode::kCorrupted, "wire errors during cluster populate"};
  }
  return Status::Ok();
}

/// Cluster-mode worker: the same closed loop as Worker, routed through
/// the ring with failover. Mid-run failures are the point of the drill:
/// a failed op counts as a sense error (or, post-kill, as expected
/// fallout) and the loop keeps going — the ClusterInitiator re-routes
/// around the dead node on its own.
void ClusterWorker(const Options& opt, const ZipfSampler& zipf,
                   const PayloadCache& payloads, size_t index,
                   WorkerResult* out) {
  ClusterInitiator cluster(opt.cluster, ClusterConfigFor(opt, 0x100 + index));
  Status st = cluster.ConnectAll();
  if (!st.ok()) {
    out->fatal = st;
    return;
  }
  // Seed the classes populate assigned, so power-of-two read counts
  // re-hint hotness to the survivors (hot-before-cold refetch ordering).
  for (uint32_t rank = 0; rank < opt.objects; ++rank) {
    int cls = ClassOfRank(opt, rank);
    if (cls >= 0) cluster.NoteObject(IdForRank(rank), static_cast<uint8_t>(cls));
  }
  Pcg32 rng(opt.seed + 0x1000 + index, /*stream=*/index);
  for (uint64_t i = 0; i < opt.requests; ++i) {
    uint32_t rank = zipf.Sample(rng);
    bool is_write = rng.NextDouble() < opt.write_ratio;
    OsdCommand cmd;
    if (is_write) {
      std::span<const uint8_t> p = payloads.Of(rank);
      cmd.op = OsdOp::kWrite;
      cmd.id = IdForRank(rank);
      cmd.logical_size = p.size();
      cmd.data.assign(p.begin(), p.end());
    } else {
      cmd.op = OsdOp::kRead;
      cmd.id = IdForRank(rank);
    }
    auto start = std::chrono::steady_clock::now();
    OsdResponse resp = cluster.Roundtrip(cmd);
    double us = std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    (is_write ? out->write_us : out->read_us).Add(us);
    out->all_us.Add(us);
    ++(is_write ? out->writes : out->reads);
    if (is_write && resp.ok()) {
      // Same ack contract as single-node: the owning node committed (and
      // for class 0/1, fsync'd) before answering. A write the ring could
      // not place is NOT acked — never blindly resent to another node.
      out->acked_ranks.push_back(rank);
      uint64_t acked = g_acked_writes.fetch_add(1) + 1;
      if (opt.kill_after > 0 && acked == opt.kill_after) KillServer(opt);
    }
    if (!resp.ok()) {
      if (!g_killed.load()) ++out->sense_errors;
    } else if (!is_write && opt.verify) {
      std::span<const uint8_t> want = payloads.Of(rank);
      if (resp.data.size() < want.size() ||
          !std::equal(want.begin(), want.end(), resp.data.begin())) {
        ++out->verify_errors;
      }
    }
  }
  out->wire = cluster.WireStats();
  out->cluster = cluster.stats();
}

/// The "backend" of the node-kill drill: the deterministic payload
/// generator, keyed back from ObjectId to rank — exactly what a real
/// origin store would serve for a cache refetch.
Result<std::vector<uint8_t>> OriginFetch(const Options& opt, ObjectId id) {
  const uint64_t base = kFirstUserId + 0x1000;
  if (id.pid != kFirstUserId || id.oid < base ||
      id.oid >= base + opt.objects) {
    return Status{ErrorCode::kNotFound,
                  "no such origin object " + id.ToString()};
  }
  return PayloadFor(static_cast<uint32_t>(id.oid - base), opt.object_bytes);
}

/// Reads each acked rank back through the ring and applies the per-class
/// contract: class 0/1 must be served with exact bytes (post-recovery,
/// without any backend fall-through); class 2/3 may degrade to clean
/// misses; anything served must byte-match. Exit 3 corrupt, 4 lost.
int ClusterVerifyRanks(const Options& opt, ClusterInitiator& cluster,
                       const std::set<uint32_t>& ranks, const char* label) {
  uint64_t missing = 0, mismatched = 0, degraded = 0;
  for (uint32_t rank : ranks) {
    OsdCommand read;
    read.op = OsdOp::kRead;
    read.id = IdForRank(rank);
    OsdResponse resp = cluster.Roundtrip(read);
    int cls = ClassOfRank(opt, rank);
    if (!resp.ok()) {
      if (cls == 0 || cls == 1) {
        ++missing;
        std::fprintf(stderr,
                     "rank %u (class %d): acked object lost in %s (sense"
                     " %s)\n", rank, cls, label,
                     std::string(to_string(resp.sense)).c_str());
      } else {
        ++degraded;  // clean miss: the cache refills it from the backend
      }
      continue;
    }
    std::vector<uint8_t> want = PayloadFor(rank, opt.object_bytes);
    if (resp.data.size() < want.size() ||
        !std::equal(want.begin(), want.end(), resp.data.begin())) {
      ++mismatched;
      std::fprintf(stderr, "rank %u (class %d): payload corrupt in %s\n",
                   rank, cls, label);
    }
  }
  std::printf("%s: %zu acked objects, %llu lost (class 0/1), %llu corrupt,"
              " %llu degraded to clean misses (class 2/3)\n",
              label, ranks.size(), static_cast<unsigned long long>(missing),
              static_cast<unsigned long long>(mismatched),
              static_cast<unsigned long long>(degraded));
  if (mismatched > 0) return 3;
  if (missing > 0) return 4;
  return 0;
}

/// Post-kill phase of the node-kill drill: announce the death to the
/// survivors, run the differentiated cross-node recovery (class 0/1
/// refetched from the origin, class 0 before 1, hot before cold; 2/3
/// degrade), then drain-verify every acked object per class.
int ClusterRecoverAndVerify(const Options& opt,
                            const std::set<uint32_t>& acked) {
  ClusterInitiator cluster(opt.cluster, ClusterConfigFor(opt, 0xd7a1));
  Status st = cluster.ConnectAll();
  if (!st.ok()) {
    std::fprintf(stderr, "cluster recovery connect failed: %s\n",
                 st.to_string().c_str());
    return 1;
  }
  ClusterRecoveryDriver driver(
      cluster, [&opt](ObjectId id) { return OriginFetch(opt, id); });
  auto report = driver.Recover(static_cast<uint32_t>(opt.kill_node));
  if (!report.ok()) {
    std::fprintf(stderr, "cluster recovery failed: %s\n",
                 report.status().to_string().c_str());
    return 1;
  }
  std::printf("cluster recovery: %llu survivors answered OWNERS, %llu"
              " dead-node objects; refetched %llu class-0 + %llu class-1"
              " (hot first), degraded %llu class-2 + %llu class-3 to clean"
              " misses, %llu refetch failures\n",
              static_cast<unsigned long long>(report->survivors_queried),
              static_cast<unsigned long long>(report->dead_entries),
              static_cast<unsigned long long>(report->refetched_class0),
              static_cast<unsigned long long>(report->refetched_class1),
              static_cast<unsigned long long>(report->clean_miss_class2),
              static_cast<unsigned long long>(report->clean_miss_class3),
              static_cast<unsigned long long>(report->refetch_failures));
  return ClusterVerifyRanks(opt, cluster, acked, "cluster drain-verify");
}

/// Verify-only mode: reads every rank listed in the manifest back and
/// checks contents against the deterministic payload. Any acknowledged
/// object that is missing or wrong after a restart is durability loss.
int VerifyManifest(const Options& opt) {
  auto text = ReadFileToString(opt.verify_manifest);
  if (!text.ok()) {
    std::fprintf(stderr, "cannot read manifest %s: %s\n",
                 opt.verify_manifest.c_str(),
                 text.status().to_string().c_str());
    return 1;
  }
  std::set<uint32_t> ranks;
  std::istringstream lines(*text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    ranks.insert(static_cast<uint32_t>(std::strtoul(line.c_str(), nullptr, 10)));
  }
  if (!opt.cluster.empty()) {
    // Cluster manifests verify through the ring with the per-class
    // contract (a killed member may still be down when this runs).
    ClusterInitiator cluster(opt.cluster, ClusterConfigFor(opt, 0x3e1f));
    Status st = cluster.ConnectAll();
    if (!st.ok()) {
      std::fprintf(stderr, "cluster connect failed: %s\n",
                   st.to_string().c_str());
      return 1;
    }
    return ClusterVerifyRanks(opt, cluster, ranks, "cluster manifest-verify");
  }
  SocketInitiator client;
  Status st = client.Connect(opt.host, opt.port);
  if (!st.ok()) {
    std::fprintf(stderr, "connect failed: %s\n", st.to_string().c_str());
    return 1;
  }
  uint64_t missing = 0, mismatched = 0;
  for (uint32_t rank : ranks) {
    OsdCommand read;
    read.op = OsdOp::kRead;
    read.id = IdForRank(rank);
    OsdResponse resp = client.Roundtrip(read);
    if (!client.connected()) {
      std::fprintf(stderr, "connection lost during verify\n");
      return 1;
    }
    if (!resp.ok()) {
      ++missing;
      std::fprintf(stderr, "rank %u: acked write missing after restart"
                   " (sense %s)\n", rank,
                   std::string(to_string(resp.sense)).c_str());
      continue;
    }
    std::vector<uint8_t> want = PayloadFor(rank, opt.object_bytes);
    if (resp.data.size() < want.size() ||
        !std::equal(want.begin(), want.end(), resp.data.begin())) {
      ++mismatched;
      std::fprintf(stderr, "rank %u: payload mismatch after restart\n", rank);
    }
  }
  const SocketInitiatorStats& w = client.stats();
  std::printf("verified %zu acked objects: %llu missing, %llu mismatched\n",
              ranks.size(), static_cast<unsigned long long>(missing),
              static_cast<unsigned long long>(mismatched));
  if (w.crc_errors + w.frame_errors + w.decode_errors > 0) return 2;
  return (missing + mismatched > 0) ? 4 : 0;
}

void Usage(const char* argv0) {
  std::printf(
      "usage: %s --port N [options]\n"
      "  --host ADDR          server address (default 127.0.0.1)\n"
      "  --port N             server port (required)\n"
      "  --connections N      closed-loop connections/threads (default 4)\n"
      "  --requests N         requests per connection (default 2000)\n"
      "  --write-ratio F      fraction of writes (default 0.3)\n"
      "  --objects N          distinct objects (default 1000)\n"
      "  --zipf S             Zipf popularity skew (default 0.9)\n"
      "  --object-kb N        object size in KiB (default 64)\n"
      "  --seed N             RNG seed (default 42)\n"
      "  --shards N           shard count of the server under test; labels\n"
      "                       the bench report for scaling curves (default 1)\n"
      "  --no-verify          skip read-payload content verification\n"
      "  --stats-out PATH     write the telemetry snapshot JSON\n"
      "  --bench-out PATH     write the BENCH_serve.json bench report\n"
      "crash testing:\n"
      "  --write-class C      classify objects into class C via #SETID#\n"
      "  --kill-after N       SIGKILL the server after N acked burst writes\n"
      "  --kill-pid-file PATH file holding the server pid (for --kill-after)\n"
      "  --ack-manifest PATH  record acknowledged write ranks, one per line\n"
      "  --verify-manifest PATH  verify-only mode: read each listed rank\n"
      "                       back and compare contents (exit 4 on loss)\n"
      "chaos testing:\n"
      "  --chaos-spec PATH    the fault spec the server is running with\n"
      "                       (reo_server --fault-spec). Turns on client\n"
      "                       tolerance (timeouts, reconnect-retry) and a\n"
      "                       final drain-verify of every acked write:\n"
      "                       exit 3 on corruption, 4 on acked-write loss\n"
      "cluster mode:\n"
      "  --cluster LIST       route through a consistent-hash ring over the\n"
      "                       comma-separated host:port members (replaces\n"
      "                       --host/--port)\n"
      "  --class-cycle        classify rank r into class r%%4 at populate,\n"
      "                       so the node-kill drill covers every class\n"
      "  --kill-node K        ring index of the member --kill-after kills\n"
      "                       (pid from --kill-pid-file); afterwards the\n"
      "                       loadgen announces the death, runs the\n"
      "                       differentiated cross-node recovery (class\n"
      "                       0/1 refetched hot-first; 2/3 clean misses),\n"
      "                       and drain-verifies per class (exit 3/4)\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--host")) opt.host = next();
    else if (!std::strcmp(argv[i], "--port")) opt.port = static_cast<uint16_t>(std::strtoul(next(), nullptr, 10));
    else if (!std::strcmp(argv[i], "--connections")) opt.connections = std::strtoull(next(), nullptr, 10);
    else if (!std::strcmp(argv[i], "--requests")) opt.requests = std::strtoull(next(), nullptr, 10);
    else if (!std::strcmp(argv[i], "--write-ratio")) opt.write_ratio = std::atof(next());
    else if (!std::strcmp(argv[i], "--objects")) opt.objects = static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    else if (!std::strcmp(argv[i], "--zipf")) opt.zipf_skew = std::atof(next());
    else if (!std::strcmp(argv[i], "--object-kb")) opt.object_bytes = std::strtoull(next(), nullptr, 10) * 1024;
    else if (!std::strcmp(argv[i], "--seed")) opt.seed = std::strtoull(next(), nullptr, 10);
    else if (!std::strcmp(argv[i], "--shards")) {
      opt.shards = std::strtoull(next(), nullptr, 10);
      if (opt.shards == 0) opt.shards = 1;
    }
    else if (!std::strcmp(argv[i], "--no-verify")) opt.verify = false;
    else if (!std::strcmp(argv[i], "--stats-out")) opt.stats_out = next();
    else if (!std::strcmp(argv[i], "--bench-out")) opt.bench_out = next();
    else if (!std::strcmp(argv[i], "--write-class")) opt.write_class = std::atoi(next());
    else if (!std::strcmp(argv[i], "--kill-after")) opt.kill_after = std::strtoull(next(), nullptr, 10);
    else if (!std::strcmp(argv[i], "--kill-pid-file")) opt.kill_pid_file = next();
    else if (!std::strcmp(argv[i], "--ack-manifest")) opt.ack_manifest = next();
    else if (!std::strcmp(argv[i], "--verify-manifest")) opt.verify_manifest = next();
    else if (!std::strcmp(argv[i], "--cluster")) {
      opt.cluster = ParseClusterEndpoints(next());
      if (opt.cluster.empty()) {
        std::fprintf(stderr, "bad --cluster list (want host:port,...)\n");
        return 2;
      }
    }
    else if (!std::strcmp(argv[i], "--class-cycle")) opt.class_cycle = true;
    else if (!std::strcmp(argv[i], "--kill-node")) opt.kill_node = std::atoi(next());
    else if (!std::strcmp(argv[i], "--chaos-spec")) {
      // Validate the spec (same parser the server uses) so a typo fails
      // here rather than silently running a chaos test with no chaos.
      auto spec = LoadFaultSpecFile(next());
      if (!spec.ok()) {
        std::fprintf(stderr, "bad chaos spec: %s\n",
                     spec.status().to_string().c_str());
        return 2;
      }
      if (spec->empty()) {
        std::fprintf(stderr, "chaos spec has no rules\n");
        return 2;
      }
      opt.chaos = true;
    }
    else if (!std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h")) {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      Usage(argv[0]);
      return 2;
    }
  }
  if (opt.port == 0 && opt.cluster.empty()) {
    std::fprintf(stderr, "--port (or --cluster) is required\n");
    Usage(argv[0]);
    return 2;
  }
  if (opt.kill_node >= 0 &&
      (opt.cluster.empty() ||
       opt.kill_node >= static_cast<int>(opt.cluster.size()))) {
    std::fprintf(stderr, "--kill-node needs --cluster with that member\n");
    return 2;
  }
  if (!opt.verify_manifest.empty()) return VerifyManifest(opt);
  if (opt.kill_after > 0 && opt.kill_pid_file.empty()) {
    std::fprintf(stderr, "--kill-after requires --kill-pid-file\n");
    return 2;
  }

  std::vector<uint32_t> populate_acks;
  Status setup = opt.cluster.empty() ? Populate(opt, &populate_acks)
                                     : ClusterPopulate(opt, &populate_acks);
  if (!setup.ok()) {
    std::fprintf(stderr, "populate failed: %s\n", setup.to_string().c_str());
    return 1;
  }
  std::printf("populated %u objects x %llu KiB; starting %zu connections"
              " x %llu requests (%.0f%% writes, zipf %.2f)\n",
              opt.objects, static_cast<unsigned long long>(opt.object_bytes >> 10),
              opt.connections, static_cast<unsigned long long>(opt.requests),
              opt.write_ratio * 100, opt.zipf_skew);
  std::fflush(stdout);

  ZipfSampler zipf(opt.objects, opt.zipf_skew);
  PayloadCache payloads(opt.objects, opt.object_bytes);
  std::vector<WorkerResult> results(opt.connections);
  uint64_t allocs_before = g_allocations.load(std::memory_order_relaxed);
  double cpu_before = ProcessCpuSeconds();
  auto bench_start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(opt.connections);
    for (size_t i = 0; i < opt.connections; ++i) {
      threads.emplace_back(opt.cluster.empty() ? Worker : ClusterWorker,
                           std::cref(opt), std::cref(zipf),
                           std::cref(payloads), i, &results[i]);
    }
    for (auto& t : threads) t.join();
  }
  double elapsed_sec = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - bench_start)
                           .count();
  double cpu_sec = ProcessCpuSeconds() - cpu_before;
  uint64_t allocs =
      g_allocations.load(std::memory_order_relaxed) - allocs_before;

  // Merge the per-thread results into one registry; everything reported
  // below is read back out of its snapshot.
  MetricRegistry registry;
  ShardedHistogram& read_us = registry.GetHistogram("loadgen.latency.read_us");
  ShardedHistogram& write_us =
      registry.GetHistogram("loadgen.latency.write_us");
  ShardedHistogram& all_us = registry.GetHistogram("loadgen.latency.all_us");
  Counter& reads = registry.GetCounter("loadgen.reads");
  Counter& writes = registry.GetCounter("loadgen.writes");
  Counter& sense_errors = registry.GetCounter("loadgen.sense_errors");
  Counter& verify_errors = registry.GetCounter("loadgen.verify_errors");
  Counter& bytes_sent = registry.GetCounter("loadgen.bytes_sent");
  Counter& bytes_received = registry.GetCounter("loadgen.bytes_received");
  Counter& crc_errors = registry.GetCounter("loadgen.wire.crc_errors");
  Counter& frame_errors = registry.GetCounter("loadgen.wire.frame_errors");
  Counter& decode_errors = registry.GetCounter("loadgen.wire.decode_errors");
  Counter& read_failovers =
      registry.GetCounter("loadgen.cluster.read_failovers");
  Counter& transport_failures =
      registry.GetCounter("loadgen.cluster.transport_failures");
  Counter& failed_writes = registry.GetCounter("loadgen.cluster.failed_writes");
  Counter& hints_sent = registry.GetCounter("loadgen.cluster.hints_sent");
  int fatal = 0;
  for (const WorkerResult& r : results) {
    read_us.Merge(r.read_us);
    write_us.Merge(r.write_us);
    all_us.Merge(r.all_us);
    reads.Inc(r.reads);
    writes.Inc(r.writes);
    sense_errors.Inc(r.sense_errors);
    verify_errors.Inc(r.verify_errors);
    bytes_sent.Inc(r.wire.bytes_sent);
    bytes_received.Inc(r.wire.bytes_received);
    crc_errors.Inc(r.wire.crc_errors);
    frame_errors.Inc(r.wire.frame_errors);
    decode_errors.Inc(r.wire.decode_errors);
    read_failovers.Inc(r.cluster.read_failovers);
    transport_failures.Inc(r.cluster.transport_failures);
    failed_writes.Inc(r.cluster.failed_writes);
    hints_sent.Inc(r.cluster.hints_sent);
    if (!r.fatal.ok()) {
      std::fprintf(stderr, "worker failed: %s\n", r.fatal.to_string().c_str());
      fatal = 1;
    }
  }
  uint64_t total_ops = reads.value() + writes.value();
  registry.GetGauge("loadgen.elapsed_sec").Set(elapsed_sec);
  registry.GetGauge("loadgen.throughput.ops_per_sec")
      .Set(elapsed_sec > 0 ? static_cast<double>(total_ops) / elapsed_sec : 0);
  registry.GetGauge("loadgen.throughput.mbps")
      .Set(elapsed_sec > 0
               ? static_cast<double>(bytes_sent.value() + bytes_received.value()) /
                     1e6 / elapsed_sec
               : 0);

  MetricSnapshot snap = registry.Snapshot();
  const MetricSnapshot::Entry* lat = snap.Find("loadgen.latency.all_us");
  const MetricSnapshot::Entry* ops_s = snap.Find("loadgen.throughput.ops_per_sec");
  const MetricSnapshot::Entry* mbps = snap.Find("loadgen.throughput.mbps");
  std::printf("%llu ops in %.2f s: %.0f ops/s, %.1f MB/s on the wire\n",
              static_cast<unsigned long long>(total_ops), elapsed_sec,
              ops_s ? ops_s->value : 0.0, mbps ? mbps->value : 0.0);
  if (lat != nullptr && lat->count > 0) {
    std::printf("latency: p50 %.0f us, p99 %.0f us, p999 %.0f us"
                " (mean %.0f, max %.0f)\n",
                lat->p50, lat->p99, lat->p999, lat->mean, lat->max);
  }
  if (!opt.cluster.empty()) {
    std::printf("cluster: %llu read failovers, %llu transport failures,"
                " %llu unacked writes, %llu hints placed\n",
                static_cast<unsigned long long>(read_failovers.value()),
                static_cast<unsigned long long>(transport_failures.value()),
                static_cast<unsigned long long>(failed_writes.value()),
                static_cast<unsigned long long>(hints_sent.value()));
  }
  std::printf("cost: %.2f s CPU, %.1f allocations/op\n", cpu_sec,
              total_ops > 0
                  ? static_cast<double>(allocs) / static_cast<double>(total_ops)
                  : 0.0);
  if (!opt.bench_out.empty()) {
    BenchServeReport report;
    report.bench = "reo_loadgen";
    char wl[160];
    std::snprintf(wl, sizeof(wl),
                  "%zuconn x %llureq, %u obj x %lluKiB, %.0f%% writes, "
                  "zipf %.2f, %zu shard%s",
                  opt.connections,
                  static_cast<unsigned long long>(opt.requests), opt.objects,
                  static_cast<unsigned long long>(opt.object_bytes >> 10),
                  opt.write_ratio * 100, opt.zipf_skew, opt.shards,
                  opt.shards == 1 ? "" : "s");
    report.workload = wl;
    if (!opt.cluster.empty()) {
      report.workload +=
          ", " + std::to_string(opt.cluster.size()) + "-node cluster";
    }
    report.ops = total_ops;
    report.wall_seconds = elapsed_sec;
    report.cpu_seconds = cpu_sec;
    report.throughput_ops_per_sec = ops_s ? ops_s->value : 0.0;
    if (lat != nullptr) {
      report.p50_us = lat->p50;
      report.p99_us = lat->p99;
      report.p999_us = lat->p999;
    }
    uint64_t wire_bytes = bytes_sent.value() + bytes_received.value();
    report.bytes_per_op =
        total_ops > 0
            ? static_cast<double>(wire_bytes) / static_cast<double>(total_ops)
            : 0.0;
    report.allocs_per_op =
        total_ops > 0
            ? static_cast<double>(allocs) / static_cast<double>(total_ops)
            : 0.0;
    Status wf = WriteBenchServeJson(opt.bench_out, report);
    if (!wf.ok()) {
      std::fprintf(stderr, "bench report write failed: %s\n",
                   wf.to_string().c_str());
      return 1;
    }
    std::printf("bench report -> %s\n", opt.bench_out.c_str());
  }
  std::printf("errors: %llu sense, %llu verify, wire %llu crc / %llu frame"
              " / %llu decode\n",
              static_cast<unsigned long long>(sense_errors.value()),
              static_cast<unsigned long long>(verify_errors.value()),
              static_cast<unsigned long long>(crc_errors.value()),
              static_cast<unsigned long long>(frame_errors.value()),
              static_cast<unsigned long long>(decode_errors.value()));
  if (!opt.stats_out.empty()) {
    Status wf = WriteFileAtomic(opt.stats_out, snap.ToJson());
    if (!wf.ok()) {
      std::fprintf(stderr, "stats write failed: %s\n", wf.to_string().c_str());
      return 1;
    }
    std::printf("telemetry snapshot -> %s\n", opt.stats_out.c_str());
  }
  if (!opt.ack_manifest.empty()) {
    // Every rank any connection saw acknowledged, deduped: the exact set
    // the post-restart verify pass must find intact.
    std::set<uint32_t> acked(populate_acks.begin(), populate_acks.end());
    for (const WorkerResult& r : results) {
      acked.insert(r.acked_ranks.begin(), r.acked_ranks.end());
    }
    std::ostringstream manifest;
    for (uint32_t rank : acked) manifest << rank << "\n";
    Status wf = WriteFileAtomic(opt.ack_manifest, manifest.str());
    if (!wf.ok()) {
      std::fprintf(stderr, "manifest write failed: %s\n",
                   wf.to_string().c_str());
      return 1;
    }
    std::printf("ack manifest (%zu ranks) -> %s\n", acked.size(),
                opt.ack_manifest.c_str());
  }
  // Verdict precedence lives in loadgen_exit.h so it is unit-tested; in
  // particular a fatal worker fails the run even in kill mode (previously
  // kill-mode success was checked first and masked dead workers).
  loadgen::RunOutcome outcome;
  outcome.worker_fatal = fatal != 0;
  outcome.kill_mode = opt.kill_after > 0;
  outcome.killed = g_killed.load();
  outcome.wire_errors =
      crc_errors.value() + frame_errors.value() + decode_errors.value();
  outcome.verify_errors = verify_errors.value();
  int code = loadgen::ExitCode(outcome);
  if (outcome.kill_mode && !outcome.killed) {
    std::fprintf(stderr, "kill mode: server was never killed"
                 " (fewer than %llu writes acked?)\n",
                 static_cast<unsigned long long>(opt.kill_after));
  }
  if (code != 0) return code;
  if (outcome.kill_mode) {
    // Cluster kill mode keeps going: the survivors are still serving, so
    // the cross-node recovery and the per-class drain-verify run now.
    if (!opt.cluster.empty() && opt.kill_node >= 0) {
      std::set<uint32_t> acked(populate_acks.begin(), populate_acks.end());
      for (const WorkerResult& r : results) {
        acked.insert(r.acked_ranks.begin(), r.acked_ranks.end());
      }
      return ClusterRecoverAndVerify(opt, acked);
    }
    // Single-node kill mode ends here: the server is gone, nothing to
    // drain.
    return 0;
  }
  if (opt.chaos) {
    std::set<uint32_t> acked(populate_acks.begin(), populate_acks.end());
    for (const WorkerResult& r : results) {
      acked.insert(r.acked_ranks.begin(), r.acked_ranks.end());
    }
    return ChaosDrainVerify(opt, acked);
  }
  return 0;
}
