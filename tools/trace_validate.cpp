// trace_validate: checks that a Chrome trace-event JSON file (as written
// by reo_cli --trace-out or the figure benches) is well-formed and
// actually contains spans. Used by the CI trace-smoke job; exits non-zero
// with a parse location on any problem.
//
//   trace_validate run.json [--min-spans N] [--min-events N]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/file_util.h"
#include "trace/json_lint.h"

using namespace reo;

int main(int argc, char** argv) {
  const char* path = nullptr;
  uint64_t min_spans = 1;
  uint64_t min_events = 0;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--min-spans")) {
      min_spans = std::strtoull(next(), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--min-events")) {
      min_events = std::strtoull(next(), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h")) {
      std::printf("usage: %s FILE [--min-spans N] [--min-events N]\n", argv[0]);
      return 0;
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "unexpected argument %s\n", argv[i]);
      return 2;
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr, "usage: %s FILE [--min-spans N] [--min-events N]\n",
                 argv[0]);
    return 2;
  }

  auto contents = ReadFileToString(path);
  if (!contents.ok()) {
    std::fprintf(stderr, "%s: %s\n", path, contents.status().to_string().c_str());
    return 1;
  }
  JsonLintResult lint = LintJson(*contents);
  if (!lint.ok) {
    std::fprintf(stderr, "%s: invalid JSON at byte %zu: %s\n", path,
                 lint.error_offset, lint.error.c_str());
    return 1;
  }
  if (lint.complete_events < min_spans) {
    std::fprintf(stderr, "%s: only %llu spans (need >= %llu)\n", path,
                 static_cast<unsigned long long>(lint.complete_events),
                 static_cast<unsigned long long>(min_spans));
    return 1;
  }
  if (lint.instant_events < min_events) {
    std::fprintf(stderr, "%s: only %llu instant events (need >= %llu)\n", path,
                 static_cast<unsigned long long>(lint.instant_events),
                 static_cast<unsigned long long>(min_events));
    return 1;
  }
  std::printf("%s: ok — %llu spans, %llu instants, %llu track metadata\n", path,
              static_cast<unsigned long long>(lint.complete_events),
              static_cast<unsigned long long>(lint.instant_events),
              static_cast<unsigned long long>(lint.metadata_events));
  return 0;
}
