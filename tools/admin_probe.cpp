// admin_probe: one-shot in-band admin query against a live reo_server.
//
// Connects over the framed OSD wire, issues one ADMIN command (STATS /
// SERIES / EVENTS / HEALTH), prints the JSON reply, and optionally
// asserts on it — the CI smoke job's probe. Examples:
//
//   admin_probe --port 9555 health
//   admin_probe --port-file port.txt --lint stats
//   admin_probe --port-file port.txt --arg 10 series
//   admin_probe --port-file port.txt --lint \
//       --expect-zero counters.server.crc_errors \
//       --expect-zero counters.fault.crc_unrepaired stats
//
// Exit codes: 0 ok; 1 an --expect-zero value was nonzero; 2 usage /
// connect / protocol error (including status!=0 replies); 3 the reply
// failed --lint or could not be parsed for --expect-zero.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/file_util.h"
#include "server/socket_initiator.h"
#include "telemetry/json_scan.h"
#include "trace/json_lint.h"

using namespace reo;

namespace {

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options] stats|series|events|health\n"
      "  --host ADDR        server address (default 127.0.0.1)\n"
      "  --port N           server port\n"
      "  --port-file PATH   read the port from PATH (reo_server --port-file)\n"
      "  --arg N            series: newest N windows; events: newest N\n"
      "                     events (default 0 = all retained)\n"
      "  --timeout-ms N     connect/receive deadline (default 5000)\n"
      "  --lint             validate the reply is well-formed JSON (exit 3)\n"
      "  --expect-zero PATH assert a numeric field is 0 or absent; PATH is\n"
      "                     section.metric (\"counters.server.crc_errors\")\n"
      "                     or a flat health field (\"crc_errors\");\n"
      "                     repeatable (exit 1 on violation)\n"
      "  --expect-sum SPEC  assert \"a+b=c\" over numeric fields (same PATH\n"
      "                     syntax; absent fields count as 0), e.g.\n"
      "                     counters.admit.graduated+counters.admit.dropped=\n"
      "                     counters.dram.evictions; repeatable (exit 1)\n"
      "  --quiet            suppress the JSON body on stdout\n",
      argv0);
}

/// Resolves an --expect-zero path: "section.rest" against an object-valued
/// `section` member first (metric names contain dots, so only the first
/// dot splits), then the whole path as one flat key at the root.
int ResolvePath(const JsonDoc& doc, const std::string& path) {
  size_t dot = path.find('.');
  if (dot != std::string::npos) {
    int section = doc.member(doc.root(), path.substr(0, dot));
    if (doc.is(section, JsonDoc::Type::kObject)) {
      int hit = doc.member(section, path.substr(dot + 1));
      if (hit != JsonDoc::kInvalid) return hit;
    }
  }
  return doc.member(doc.root(), path);
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::string port_file;
  uint16_t port = 0;
  uint32_t arg = 0;
  uint32_t timeout_ms = 5000;
  bool lint = false;
  bool quiet = false;
  std::vector<std::string> expect_zero;
  std::vector<std::string> expect_sum;
  const char* op_name = nullptr;

  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--host")) {
      host = next();
    } else if (!std::strcmp(argv[i], "--port")) {
      port = static_cast<uint16_t>(std::strtoul(next(), nullptr, 10));
    } else if (!std::strcmp(argv[i], "--port-file")) {
      port_file = next();
    } else if (!std::strcmp(argv[i], "--arg")) {
      arg = static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (!std::strcmp(argv[i], "--timeout-ms")) {
      timeout_ms = static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (!std::strcmp(argv[i], "--lint")) {
      lint = true;
    } else if (!std::strcmp(argv[i], "--expect-zero")) {
      expect_zero.emplace_back(next());
    } else if (!std::strcmp(argv[i], "--expect-sum")) {
      expect_sum.emplace_back(next());
    } else if (!std::strcmp(argv[i], "--quiet")) {
      quiet = true;
    } else if (!std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h")) {
      Usage(argv[0]);
      return 0;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      Usage(argv[0]);
      return 2;
    } else if (op_name == nullptr) {
      op_name = argv[i];
    } else {
      std::fprintf(stderr, "more than one command: %s\n", argv[i]);
      return 2;
    }
  }
  if (op_name == nullptr) {
    Usage(argv[0]);
    return 2;
  }
  AdminOp op;
  if (!std::strcmp(op_name, "stats")) op = AdminOp::kStats;
  else if (!std::strcmp(op_name, "series")) op = AdminOp::kSeries;
  else if (!std::strcmp(op_name, "events")) op = AdminOp::kEvents;
  else if (!std::strcmp(op_name, "health")) op = AdminOp::kHealth;
  else {
    std::fprintf(stderr, "unknown command %s\n", op_name);
    return 2;
  }
  if (!port_file.empty()) {
    auto text = ReadFileToString(port_file);
    if (!text.ok()) {
      std::fprintf(stderr, "port file: %s\n",
                   text.status().to_string().c_str());
      return 2;
    }
    port = static_cast<uint16_t>(std::strtoul(text->c_str(), nullptr, 10));
  }
  if (port == 0) {
    std::fprintf(stderr, "need --port or --port-file\n");
    return 2;
  }

  SocketInitiatorConfig cfg;
  cfg.connect_timeout_ms = timeout_ms;
  cfg.receive_timeout_ms = timeout_ms;
  SocketInitiator client(cfg);
  Status st = client.Connect(host, port);
  if (!st.ok()) {
    std::fprintf(stderr, "connect %s:%u: %s\n", host.c_str(), port,
                 st.to_string().c_str());
    return 2;
  }
  auto resp = client.AdminRoundtrip(op, arg);
  if (!resp.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", op_name,
                 resp.status().to_string().c_str());
    return 2;
  }
  if (!quiet) std::printf("%s\n", resp->json.c_str());
  if (resp->status != 0) {
    std::fprintf(stderr, "%s answered status %u: %s\n", op_name, resp->status,
                 resp->json.c_str());
    return 2;
  }

  if (lint) {
    JsonLintResult lr = LintJson(resp->json);
    if (!lr.ok) {
      std::fprintf(stderr, "%s reply is not valid JSON at byte %zu: %s\n",
                   op_name, lr.error_offset, lr.error.c_str());
      return 3;
    }
  }
  if (!expect_zero.empty() || !expect_sum.empty()) {
    auto doc = JsonDoc::Parse(resp->json);
    if (!doc) {
      std::fprintf(stderr, "%s reply did not parse\n", op_name);
      return 3;
    }
    int violations = 0;
    for (const std::string& path : expect_zero) {
      int node = ResolvePath(*doc, path);
      if (node == JsonDoc::kInvalid) continue;  // never registered: zero
      double v = doc->number(node);
      if (v != 0.0) {
        std::fprintf(stderr, "expect-zero violated: %s = %g\n", path.c_str(),
                     v);
        ++violations;
      }
    }
    auto value_at = [&doc](const std::string& path) -> double {
      int node = ResolvePath(*doc, path);
      return node == JsonDoc::kInvalid ? 0.0 : doc->number(node);
    };
    for (const std::string& spec : expect_sum) {
      size_t eq = spec.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "bad --expect-sum spec (no '='): %s\n",
                     spec.c_str());
        return 2;
      }
      double lhs = 0.0;
      size_t start = 0;
      while (start <= eq) {
        size_t plus = spec.find('+', start);
        if (plus == std::string::npos || plus > eq) plus = eq;
        lhs += value_at(spec.substr(start, plus - start));
        start = plus + 1;
      }
      double rhs = value_at(spec.substr(eq + 1));
      if (lhs != rhs) {
        std::fprintf(stderr, "expect-sum violated: %s (lhs %g != rhs %g)\n",
                     spec.c_str(), lhs, rhs);
        ++violations;
      }
    }
    if (violations > 0) return 1;
  }
  return 0;
}
