// admin_probe: one-shot in-band admin query against a live reo_server.
//
// Connects over the framed OSD wire, issues one ADMIN command (STATS /
// SERIES / EVENTS / HEALTH / OWNERS), prints the JSON reply, and
// optionally asserts on it — the CI smoke job's probe. With
// --endpoints it probes every node of a cluster: each reply prints
// under a per-node header, assertions apply to every node, and a
// merged view (numeric fields summed across nodes) prints last.
// Examples:
//
//   admin_probe --port 9555 health
//   admin_probe --port-file port.txt --lint stats
//   admin_probe --port-file port.txt --arg 10 series
//   admin_probe --endpoints 127.0.0.1:9555,127.0.0.1:9556 health
//   admin_probe --port-file port.txt --lint \
//       --expect-zero counters.server.crc_errors \
//       --expect-zero counters.fault.crc_unrepaired stats
//
// Exit codes: 0 ok; 1 an --expect-zero value was nonzero; 2 usage /
// connect / protocol error (including status!=0 replies); 3 the reply
// failed --lint or could not be parsed for --expect-zero.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cluster/cluster_initiator.h"
#include "common/file_util.h"
#include "server/socket_initiator.h"
#include "telemetry/json_scan.h"
#include "trace/json_lint.h"

using namespace reo;

namespace {

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options] stats|series|events|health|owners\n"
      "  --host ADDR        server address (default 127.0.0.1)\n"
      "  --port N           server port\n"
      "  --port-file PATH   read the port from PATH (reo_server --port-file)\n"
      "  --endpoints LIST   probe every node of a cluster; LIST is\n"
      "                     host:port,host:port,... — prints per-node\n"
      "                     replies plus a merged (summed) view, and\n"
      "                     applies --lint/--expect-* to every node\n"
      "  --arg N            series: newest N windows; events: newest N\n"
      "                     events (default 0 = all retained)\n"
      "  --timeout-ms N     connect/receive deadline (default 5000)\n"
      "  --lint             validate the reply is well-formed JSON (exit 3)\n"
      "  --expect-zero PATH assert a numeric field is 0 or absent; PATH is\n"
      "                     section.metric (\"counters.server.crc_errors\")\n"
      "                     or a flat health field (\"crc_errors\");\n"
      "                     repeatable (exit 1 on violation)\n"
      "  --expect-sum SPEC  assert \"a+b=c\" over numeric fields (same PATH\n"
      "                     syntax; absent fields count as 0), e.g.\n"
      "                     counters.admit.graduated+counters.admit.dropped=\n"
      "                     counters.dram.evictions; repeatable (exit 1)\n"
      "  --quiet            suppress the JSON body on stdout\n",
      argv0);
}

/// Resolves an --expect-zero path: "section.rest" against an object-valued
/// `section` member first (metric names contain dots, so only the first
/// dot splits), then the whole path as one flat key at the root.
int ResolvePath(const JsonDoc& doc, const std::string& path) {
  size_t dot = path.find('.');
  if (dot != std::string::npos) {
    int section = doc.member(doc.root(), path.substr(0, dot));
    if (doc.is(section, JsonDoc::Type::kObject)) {
      int hit = doc.member(section, path.substr(dot + 1));
      if (hit != JsonDoc::kInvalid) return hit;
    }
  }
  return doc.member(doc.root(), path);
}

void AppendJsonNumber(std::string& out, double v) {
  char buf[40];
  // Counters are integral; keep them exact instead of drifting into
  // scientific notation past 1e6.
  if (std::floor(v) == v && std::fabs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  out += buf;
}

void AppendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Re-serializes one node of a parsed reply (the merged view needs to
/// echo sub-trees it cannot sum).
void EmitNode(const JsonDoc& doc, int node, std::string& out) {
  switch (doc.type(node)) {
    case JsonDoc::Type::kNull: out += "null"; break;
    case JsonDoc::Type::kBool: out += doc.boolean(node) ? "true" : "false"; break;
    case JsonDoc::Type::kNumber: AppendJsonNumber(out, doc.number(node)); break;
    case JsonDoc::Type::kString: AppendJsonString(out, doc.str(node)); break;
    case JsonDoc::Type::kArray:
      out += '[';
      for (size_t i = 0; i < doc.size(node); ++i) {
        if (i) out += ',';
        EmitNode(doc, doc.item(node, i), out);
      }
      out += ']';
      break;
    case JsonDoc::Type::kObject:
      out += '{';
      for (size_t i = 0; i < doc.size(node); ++i) {
        if (i) out += ',';
        AppendJsonString(out, doc.key(node, i));
        out += ':';
        EmitNode(doc, doc.value(node, i), out);
      }
      out += '}';
      break;
  }
}

/// Merges the same position across per-node replies: numbers sum,
/// objects recurse over the union of keys, scalars all nodes agree on
/// pass through, and anything else (arrays, disagreeing strings) emits
/// as a per-node column array so nothing is silently dropped.
void MergeEmit(const std::vector<JsonDoc>& docs, const std::vector<int>& nodes,
               std::string& out) {
  bool all_number = true, all_object = true, all_scalar_equal = true;
  for (size_t i = 0; i < docs.size(); ++i) {
    if (nodes[i] == JsonDoc::kInvalid) continue;
    JsonDoc::Type t = docs[i].type(nodes[i]);
    if (t != JsonDoc::Type::kNumber) all_number = false;
    if (t != JsonDoc::Type::kObject) all_object = false;
    if (t == JsonDoc::Type::kArray || t == JsonDoc::Type::kObject) {
      all_scalar_equal = false;
    }
  }
  if (all_number) {
    double sum = 0;
    for (size_t i = 0; i < docs.size(); ++i) {
      if (nodes[i] != JsonDoc::kInvalid) sum += docs[i].number(nodes[i]);
    }
    AppendJsonNumber(out, sum);
    return;
  }
  if (all_object) {
    // Union of keys, first-seen order, so a metric present on only
    // some nodes still shows up in the merge.
    std::vector<std::string> keys;
    for (size_t i = 0; i < docs.size(); ++i) {
      if (nodes[i] == JsonDoc::kInvalid) continue;
      for (size_t k = 0; k < docs[i].size(nodes[i]); ++k) {
        const std::string& key = docs[i].key(nodes[i], k);
        bool seen = false;
        for (const std::string& have : keys) {
          if (have == key) { seen = true; break; }
        }
        if (!seen) keys.push_back(key);
      }
    }
    out += '{';
    for (size_t k = 0; k < keys.size(); ++k) {
      if (k) out += ',';
      AppendJsonString(out, keys[k]);
      out += ':';
      std::vector<int> children(docs.size(), JsonDoc::kInvalid);
      for (size_t i = 0; i < docs.size(); ++i) {
        if (nodes[i] != JsonDoc::kInvalid) {
          children[i] = docs[i].member(nodes[i], keys[k]);
        }
      }
      MergeEmit(docs, children, out);
    }
    out += '}';
    return;
  }
  if (all_scalar_equal) {
    int first_doc = -1;
    bool equal = true;
    for (size_t i = 0; i < docs.size(); ++i) {
      if (nodes[i] == JsonDoc::kInvalid) continue;
      if (first_doc < 0) {
        first_doc = static_cast<int>(i);
        continue;
      }
      const JsonDoc& a = docs[static_cast<size_t>(first_doc)];
      int an = nodes[static_cast<size_t>(first_doc)];
      if (docs[i].type(nodes[i]) != a.type(an) ||
          docs[i].str(nodes[i]) != a.str(an) ||
          docs[i].boolean(nodes[i]) != a.boolean(an)) {
        equal = false;
        break;
      }
    }
    if (first_doc >= 0 && equal) {
      EmitNode(docs[static_cast<size_t>(first_doc)],
               nodes[static_cast<size_t>(first_doc)], out);
      return;
    }
  }
  out += '[';
  bool first = true;
  for (size_t i = 0; i < docs.size(); ++i) {
    if (nodes[i] == JsonDoc::kInvalid) continue;
    if (!first) out += ',';
    first = false;
    EmitNode(docs[i], nodes[i], out);
  }
  out += ']';
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::string port_file;
  std::string endpoints_arg;
  uint16_t port = 0;
  uint32_t arg = 0;
  uint32_t timeout_ms = 5000;
  bool lint = false;
  bool quiet = false;
  std::vector<std::string> expect_zero;
  std::vector<std::string> expect_sum;
  const char* op_name = nullptr;

  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--host")) {
      host = next();
    } else if (!std::strcmp(argv[i], "--port")) {
      port = static_cast<uint16_t>(std::strtoul(next(), nullptr, 10));
    } else if (!std::strcmp(argv[i], "--port-file")) {
      port_file = next();
    } else if (!std::strcmp(argv[i], "--endpoints")) {
      endpoints_arg = next();
    } else if (!std::strcmp(argv[i], "--arg")) {
      arg = static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (!std::strcmp(argv[i], "--timeout-ms")) {
      timeout_ms = static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (!std::strcmp(argv[i], "--lint")) {
      lint = true;
    } else if (!std::strcmp(argv[i], "--expect-zero")) {
      expect_zero.emplace_back(next());
    } else if (!std::strcmp(argv[i], "--expect-sum")) {
      expect_sum.emplace_back(next());
    } else if (!std::strcmp(argv[i], "--quiet")) {
      quiet = true;
    } else if (!std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h")) {
      Usage(argv[0]);
      return 0;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      Usage(argv[0]);
      return 2;
    } else if (op_name == nullptr) {
      op_name = argv[i];
    } else {
      std::fprintf(stderr, "more than one command: %s\n", argv[i]);
      return 2;
    }
  }
  if (op_name == nullptr) {
    Usage(argv[0]);
    return 2;
  }
  AdminOp op;
  if (!std::strcmp(op_name, "stats")) op = AdminOp::kStats;
  else if (!std::strcmp(op_name, "series")) op = AdminOp::kSeries;
  else if (!std::strcmp(op_name, "events")) op = AdminOp::kEvents;
  else if (!std::strcmp(op_name, "health")) op = AdminOp::kHealth;
  else if (!std::strcmp(op_name, "owners")) op = AdminOp::kOwners;
  else {
    std::fprintf(stderr, "unknown command %s\n", op_name);
    return 2;
  }
  std::vector<ClusterEndpoint> endpoints;
  if (!endpoints_arg.empty()) {
    endpoints = ParseClusterEndpoints(endpoints_arg);
    if (endpoints.empty()) {
      std::fprintf(stderr, "bad --endpoints list: %s\n", endpoints_arg.c_str());
      return 2;
    }
  } else {
    if (!port_file.empty()) {
      auto text = ReadFileToString(port_file);
      if (!text.ok()) {
        std::fprintf(stderr, "port file: %s\n",
                     text.status().to_string().c_str());
        return 2;
      }
      port = static_cast<uint16_t>(std::strtoul(text->c_str(), nullptr, 10));
    }
    if (port == 0) {
      std::fprintf(stderr, "need --port, --port-file, or --endpoints\n");
      return 2;
    }
    endpoints.push_back(ClusterEndpoint{host, port});
  }
  const bool cluster = endpoints.size() > 1;

  // One reply per node; a probe asserts the whole cluster, so any
  // connect / roundtrip / status failure is fatal.
  std::vector<std::string> replies;
  for (size_t n = 0; n < endpoints.size(); ++n) {
    SocketInitiatorConfig cfg;
    cfg.connect_timeout_ms = timeout_ms;
    cfg.receive_timeout_ms = timeout_ms;
    SocketInitiator client(cfg);
    Status st = client.Connect(endpoints[n].host, endpoints[n].port);
    if (!st.ok()) {
      std::fprintf(stderr, "connect %s:%u: %s\n", endpoints[n].host.c_str(),
                   endpoints[n].port, st.to_string().c_str());
      return 2;
    }
    auto resp = client.AdminRoundtrip(op, arg);
    if (!resp.ok()) {
      std::fprintf(stderr, "node %zu %s failed: %s\n", n, op_name,
                   resp.status().to_string().c_str());
      return 2;
    }
    if (!quiet) {
      if (cluster) {
        std::printf("--- node %zu %s:%u ---\n", n, endpoints[n].host.c_str(),
                    endpoints[n].port);
      }
      std::printf("%s\n", resp->json.c_str());
    }
    if (resp->status != 0) {
      std::fprintf(stderr, "node %zu %s answered status %u: %s\n", n, op_name,
                   resp->status, resp->json.c_str());
      return 2;
    }
    replies.push_back(std::move(resp->json));
  }

  if (lint) {
    for (size_t n = 0; n < replies.size(); ++n) {
      JsonLintResult lr = LintJson(replies[n]);
      if (!lr.ok) {
        std::fprintf(stderr,
                     "node %zu %s reply is not valid JSON at byte %zu: %s\n",
                     n, op_name, lr.error_offset, lr.error.c_str());
        return 3;
      }
    }
  }

  std::vector<JsonDoc> docs;
  const bool need_docs = cluster || !expect_zero.empty() || !expect_sum.empty();
  if (need_docs) {
    for (size_t n = 0; n < replies.size(); ++n) {
      auto doc = JsonDoc::Parse(replies[n]);
      if (!doc) {
        std::fprintf(stderr, "node %zu %s reply did not parse\n", n, op_name);
        return 3;
      }
      docs.push_back(std::move(*doc));
    }
  }

  if (cluster && !quiet) {
    std::vector<int> roots(docs.size(), 0);
    std::string merged;
    MergeEmit(docs, roots, merged);
    std::printf("--- merged (%zu nodes) ---\n%s\n", docs.size(),
                merged.c_str());
  }

  int violations = 0;
  for (size_t n = 0; n < docs.size() && need_docs; ++n) {
    const JsonDoc& doc = docs[n];
    for (const std::string& path : expect_zero) {
      int node = ResolvePath(doc, path);
      if (node == JsonDoc::kInvalid) continue;  // never registered: zero
      double v = doc.number(node);
      if (v != 0.0) {
        std::fprintf(stderr, "node %zu expect-zero violated: %s = %g\n", n,
                     path.c_str(), v);
        ++violations;
      }
    }
    auto value_at = [&doc](const std::string& path) -> double {
      int node = ResolvePath(doc, path);
      return node == JsonDoc::kInvalid ? 0.0 : doc.number(node);
    };
    for (const std::string& spec : expect_sum) {
      size_t eq = spec.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "bad --expect-sum spec (no '='): %s\n",
                     spec.c_str());
        return 2;
      }
      double lhs = 0.0;
      size_t start = 0;
      while (start <= eq) {
        size_t plus = spec.find('+', start);
        if (plus == std::string::npos || plus > eq) plus = eq;
        lhs += value_at(spec.substr(start, plus - start));
        start = plus + 1;
      }
      double rhs = value_at(spec.substr(eq + 1));
      if (lhs != rhs) {
        std::fprintf(stderr,
                     "node %zu expect-sum violated: %s (lhs %g != rhs %g)\n",
                     n, spec.c_str(), lhs, rhs);
        ++violations;
      }
    }
  }
  if (violations > 0) return 1;
  return 0;
}
