// Figure 8: hit ratio, bandwidth, and latency during device failures and
// recovery (paper §VI.C).
//
// Medium workload, cache 10 % of the dataset, 1 MiB chunks, warm cache;
// four failures injected at requests 10,000 / 20,000 / 30,000 / 40,000.
// Each column is one failure phase (0-4 failed devices).
#include "figure_common.h"

using namespace reo;
using namespace reo::bench;

int main(int argc, char** argv) {
  TraceArgs targs = ParseTraceArgs(argc, argv);
  auto trace = GenerateMediSyn(MediumLocalityConfig());
  auto configs = PaperConfigs();

  std::printf("Fig 8: device failures at requests 10k/20k/30k/40k "
              "(medium workload, cache 10%%, 1 MiB chunks)\n");

  const std::vector<FailureEvent> kFailures = {{.at_request = 10000, .device = 0},
                                               {.at_request = 20000, .device = 1},
                                               {.at_request = 30000, .device = 2},
                                               {.at_request = 40000, .device = 3}};

  // Main panels: live system (cache keeps admitting on the survivors).
  std::vector<std::vector<WindowMetrics>> phases(configs.size());
  MetricSnapshot reo_telemetry;
  for (size_t c = 0; c < configs.size(); ++c) {
    SimulationConfig sim = MakeSimConfig(configs[c], 0.10, 1 << 20);
    sim.warmup_pass = true;  // §VI.C: "we first fully warm up the cache"
    sim.failures = kFailures;
    // Trace the representative Reo-20% failure run when asked to.
    if (configs[c].label == "Reo-20%") ApplyTracing(sim, targs);
    CacheSimulator s(trace, sim);
    RunReport report = s.Run();
    phases[c] = report.windows;
    if (configs[c].label == "Reo-20%") {
      reo_telemetry = report.telemetry;
      ExportTrace(s, targs);
    }
  }

  // Retention probe: freeze admissions during failures so the hit ratio
  // right after each failure measures exactly the data each policy kept
  // (re-warming cannot mask the loss).
  std::vector<std::vector<WindowMetrics>> early(configs.size());
  for (size_t c = 0; c < configs.size(); ++c) {
    SimulationConfig sim = MakeSimConfig(configs[c], 0.10, 1 << 20);
    sim.warmup_pass = true;
    sim.probe_window_requests = 2000;
    sim.cache.admit_while_degraded = false;
    sim.failures = kFailures;
    CacheSimulator s(trace, sim);
    auto windows = s.Run().windows;
    // Window layout: [0-failures, 1-early, 1-rest, 2-early, 2-rest, ...].
    for (size_t f = 1; f <= 4; ++f) {
      early[c].push_back(windows.at(2 * f - 1));
    }
  }

  auto print_panel = [&](const char* title, auto value) {
    std::printf("\n(%s)\n%-12s", title, "FailedDevs");
    for (int f = 0; f <= 4; ++f) std::printf("%10d", f);
    std::printf("\n");
    for (size_t c = 0; c < configs.size(); ++c) {
      std::printf("%-12s", configs[c].label.c_str());
      for (size_t f = 0; f < phases[c].size() && f <= 4; ++f) {
        std::printf("%10.1f", value(phases[c][f]));
      }
      std::printf("\n");
    }
  };
  print_panel("a: Hit Ratio (%)",
              [](const WindowMetrics& w) { return w.HitRatio() * 100; });
  print_panel("b: Bandwidth (MB/sec)",
              [](const WindowMetrics& w) { return w.BandwidthMBps(); });
  print_panel("c: Latency (ms)",
              [](const WindowMetrics& w) { return w.AvgLatencyMs(); });

  // Immediate first-failure retention (first 2,000 requests after the
  // failure, admissions frozen so re-warming cannot mask the loss): the
  // paper reports Reo-10% dropping 12.6 p.p. vs Reo-40% only 1.5 p.p. —
  // a larger reserve protects more of the hit ratio.
  std::printf("\n(retention probe: hit ratio right after the first failure,"
              " admissions frozen)\n");
  std::printf("%-12s %12s %12s %10s\n", "Config", "before(%)", "after(%)",
              "drop(pp)");
  for (size_t c = 0; c < configs.size(); ++c) {
    double before = phases[c][0].HitRatio() * 100;
    double after = early[c][0].HitRatio() * 100;
    std::printf("%-12s %12.1f %12.1f %10.1f\n", configs[c].label.c_str(),
                before, after, before - after);
  }

  // End-of-run telemetry for the Reo-20% failure run: the degraded-read
  // histograms and recovery counters are populated here.
  PrintTelemetry("Reo-20%, 4 failures", reo_telemetry);
  return 0;
}
