// Ablation: FTL garbage collection — write amplification vs utilization
// and GC victim policy, plus wear-leveling spread. Grounds the paper's
// wear-out motivation (§I: flash endures 1,000-5,000 P/E cycles) in a
// concrete model.
#include <cstdio>

#include "common/rng.h"
#include "flash/ftl.h"

using namespace reo;

namespace {

FtlConfig MakeFtl(GcPolicy policy) {
  FtlConfig cfg;
  cfg.page_bytes = 4096;
  cfg.pages_per_block = 64;
  cfg.block_count = 512;  // 128 MiB
  cfg.over_provisioning = 0.07;
  cfg.gc_policy = policy;
  return cfg;
}

const char* PolicyName(GcPolicy p) {
  switch (p) {
    case GcPolicy::kGreedy: return "greedy";
    case GcPolicy::kCostBenefit: return "cost-benefit";
    case GcPolicy::kWearAware: return "wear-aware";
  }
  return "?";
}

}  // namespace

int main() {
  std::printf("FTL ablation: 128 MiB device, 4 KiB pages, 64 pages/block,\n"
              "7%% over-provisioning, random whole-range overwrites\n");

  std::printf("\n(write amplification vs utilization, greedy GC)\n");
  std::printf("%-12s %8s %10s %10s\n", "Utilization", "WA", "GC-runs", "erases");
  for (double util : {0.5, 0.7, 0.8, 0.9, 0.95}) {
    Ftl ftl(MakeFtl(GcPolicy::kGreedy));
    auto working = static_cast<uint32_t>(util * static_cast<double>(ftl.logical_pages()));
    Pcg32 rng(1);
    for (uint64_t lpn = 0; lpn < working; ++lpn) {
      REO_CHECK(ftl.WritePage(lpn).ok());
    }
    for (uint64_t i = 0; i < 6ULL * working; ++i) {
      REO_CHECK(ftl.WritePage(rng.NextBounded(working)).ok());
    }
    char label[16];
    std::snprintf(label, sizeof(label), "%.0f%%", util * 100);
    std::printf("%-12s %8.2f %10llu %10llu\n", label,
                ftl.stats().WriteAmplification(),
                static_cast<unsigned long long>(ftl.stats().gc_runs),
                static_cast<unsigned long long>(ftl.stats().erases));
  }

  std::printf("\n(GC policy at 90%% utilization, hot/cold skewed overwrites)\n");
  std::printf("%-14s %8s %12s\n", "Policy", "WA", "wear-spread");
  for (auto policy :
       {GcPolicy::kGreedy, GcPolicy::kCostBenefit, GcPolicy::kWearAware}) {
    Ftl ftl(MakeFtl(policy));
    auto working = static_cast<uint32_t>(0.9 * static_cast<double>(ftl.logical_pages()));
    Pcg32 rng(2);
    for (uint64_t lpn = 0; lpn < working; ++lpn) {
      REO_CHECK(ftl.WritePage(lpn).ok());
    }
    // 90% of overwrites hit the hottest 10% of pages.
    for (uint64_t i = 0; i < 6ULL * working; ++i) {
      uint32_t lpn = rng.NextBounded(10) < 9 ? rng.NextBounded(working / 10)
                                             : rng.NextBounded(working);
      REO_CHECK(ftl.WritePage(lpn).ok());
    }
    std::printf("%-14s %8.2f %12.2f\n", PolicyName(policy),
                ftl.stats().WriteAmplification(), ftl.WearSpread());
  }
  std::printf("\nHigher utilization leaves GC fewer invalid pages per victim\n"
              "block, so every host write drags more relocation traffic —\n"
              "the wear mechanism behind the paper's reliability concern.\n");
  return 0;
}
