// Fault sweep: reliability and overhead of each protection policy under
// injected latent sector corruption (with periodic scrubbing) and
// transient flash I/O errors. Companion to the fault-injection subsystem
// (DESIGN.md "Fault model & partial-failure handling"): the correctness
// column — verify failures — must read 0 for every configuration; what
// varies is how much repair work and how many clean-miss refetches each
// policy needs to get there.
#include "figure_common.h"

using namespace reo;
using namespace reo::bench;

namespace {

double Metric(const RunReport& r, const char* name) {
  const auto* e = r.telemetry.Find(name);
  return e != nullptr ? e->value : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  TraceArgs trace_args = ParseTraceArgs(argc, argv);

  MediSynConfig wl = MediumLocalityConfig();
  wl.num_requests = 20000;  // trimmed sweep; shapes are stable
  auto trace = GenerateMediSyn(wl);

  const std::vector<Config> configs{
      {"Reo-20%", ProtectionMode::kReo, 0.20},
      {"2-parity", ProtectionMode::kUniform2, 0.0},
      {"1-parity", ProtectionMode::kUniform1, 0.0},
      {"0-parity", ProtectionMode::kUniform0, 0.0},
  };
  const std::vector<double> latent_rates{0.0, 0.001, 0.01, 0.05};

  std::printf(
      "Fault sweep: latent corruption rate vs policy "
      "(medium workload, cache 10%%, scrub every 2000 requests)\n\n");
  std::printf("%-10s %8s %8s %8s %9s %9s %11s %9s %8s\n", "Policy", "Latent",
              "Hit(%)", "p99(ms)", "Repairs", "Refetch", "Unrepaired",
              "Retries", "Verify");

  for (const Config& cfg : configs) {
    for (double rate : latent_rates) {
      SimulationConfig sim_cfg = MakeSimConfig(cfg, 0.10);
      sim_cfg.verify_hits = true;
      sim_cfg.scrub_interval_requests = 2000;
      if (rate > 0) {
        sim_cfg.faults.seed = 42;
        sim_cfg.faults.rules.push_back(
            FaultRule{.site = FaultSite::kFlashLatent, .probability = rate});
        // A light sprinkle of transient I/O errors rides along so the
        // retry path is always exercised too.
        sim_cfg.faults.rules.push_back(FaultRule{
            .site = FaultSite::kFlashReadTransient, .probability = 0.002});
      }
      ApplyTracing(sim_cfg, trace_args);
      CacheSimulator sim(trace, sim_cfg);
      RunReport r = sim.Run();

      // Repairs: CRC damage fixed in place, on read or by the scrubber.
      double repairs = Metric(r, "fault.crc_repairs") +
                       Metric(r, "scrub.chunks_repaired");
      // Unprotected copies can't be repaired: they are evicted and
      // refetched from the backend (a clean miss, never a wrong answer).
      double unrepaired = Metric(r, "fault.crc_unrepaired");
      double retries = Metric(r, "retry.attempts");
      double detected = Metric(r, "fault.crc_detected");
      double refetched = detected > repairs ? detected - repairs : 0.0;
      std::printf("%-10s %8.3f %8.1f %8.2f %9.0f %9.0f %11.0f %9.0f %8llu\n",
                  cfg.label.c_str(), rate, r.total.HitRatio() * 100,
                  r.total.P99LatencyMs(), repairs, refetched, unrepaired,
                  retries,
                  static_cast<unsigned long long>(r.cache.verify_failures));
      if (trace_args.enabled() && cfg.mode == ProtectionMode::kReo &&
          rate == latent_rates.back()) {
        ExportTrace(sim, trace_args);
      }
      if (r.cache.verify_failures != 0) {
        std::fprintf(stderr,
                     "FAULT SWEEP FAILED: %s at latent rate %.3f returned "
                     "corrupt data to a client (%llu verify failures)\n",
                     cfg.label.c_str(), rate,
                     static_cast<unsigned long long>(r.cache.verify_failures));
        return 1;
      }
    }
  }
  std::printf(
      "\nAll configurations returned byte-correct data under every fault "
      "rate (verify column is client-observed corruption).\n");
  return 0;
}
