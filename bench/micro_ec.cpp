// Microbenchmarks: GF(256) kernels and Reed-Solomon encode / reconstruct
// throughput across the stripe geometries Reo uses (google-benchmark).
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.h"
#include "ec/gf256.h"
#include "ec/rs_code.h"

namespace {

using reo::Pcg32;
using reo::RsCode;

std::vector<std::vector<uint8_t>> RandomChunks(size_t n, size_t len) {
  Pcg32 rng(42);
  std::vector<std::vector<uint8_t>> chunks(n, std::vector<uint8_t>(len));
  for (auto& c : chunks) {
    for (auto& b : c) b = static_cast<uint8_t>(rng.Next());
  }
  return chunks;
}

void BM_GfMulAcc(benchmark::State& state) {
  size_t len = static_cast<size_t>(state.range(0));
  auto bufs = RandomChunks(2, len);
  for (auto _ : state) {
    reo::gf256::MulAcc(bufs[0], bufs[1], 0x57);
    benchmark::DoNotOptimize(bufs[0].data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(len));
}
BENCHMARK(BM_GfMulAcc)->Arg(1024)->Arg(64 * 1024)->Arg(1024 * 1024);

// Pinned to the portable reference kernel so the SIMD speedup in
// BM_GfMulAcc has an in-tree denominator.
void BM_GfMulAccScalar(benchmark::State& state) {
  size_t len = static_cast<size_t>(state.range(0));
  auto bufs = RandomChunks(2, len);
  for (auto _ : state) {
    reo::gf256::MulAccScalar(bufs[0], bufs[1], 0x57);
    benchmark::DoNotOptimize(bufs[0].data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(len));
}
BENCHMARK(BM_GfMulAccScalar)->Arg(1024)->Arg(64 * 1024)->Arg(1024 * 1024);

void BM_GfMulBuf(benchmark::State& state) {
  size_t len = static_cast<size_t>(state.range(0));
  auto bufs = RandomChunks(2, len);
  for (auto _ : state) {
    reo::gf256::MulBuf(bufs[0], bufs[1], 0x57);
    benchmark::DoNotOptimize(bufs[0].data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(len));
}
BENCHMARK(BM_GfMulBuf)->Arg(1024)->Arg(64 * 1024);

void BM_GfMulBufScalar(benchmark::State& state) {
  size_t len = static_cast<size_t>(state.range(0));
  auto bufs = RandomChunks(2, len);
  for (auto _ : state) {
    reo::gf256::MulBufScalar(bufs[0], bufs[1], 0x57);
    benchmark::DoNotOptimize(bufs[0].data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(len));
}
BENCHMARK(BM_GfMulBufScalar)->Arg(1024)->Arg(64 * 1024);

void BM_RsEncode(benchmark::State& state) {
  size_t m = static_cast<size_t>(state.range(0));
  size_t k = static_cast<size_t>(state.range(1));
  size_t len = 64 * 1024;
  RsCode code(m, k);
  auto data = RandomChunks(m, len);
  std::vector<std::vector<uint8_t>> parity(k, std::vector<uint8_t>(len));
  std::vector<std::span<const uint8_t>> ds(data.begin(), data.end());
  std::vector<std::span<uint8_t>> ps(parity.begin(), parity.end());
  for (auto _ : state) {
    code.Encode(ds, ps);
    benchmark::DoNotOptimize(parity[0].data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(m * len));
}
// The geometries Reo uses on a 5-device array: 4+1, 3+2, and wider arrays.
BENCHMARK(BM_RsEncode)->Args({4, 1})->Args({3, 2})->Args({8, 2})->Args({10, 4});

void BM_RsEncodeCauchy(benchmark::State& state) {
  size_t m = static_cast<size_t>(state.range(0));
  size_t k = static_cast<size_t>(state.range(1));
  size_t len = 64 * 1024;
  RsCode code(m, k, reo::RsConstruction::kCauchy);
  auto data = RandomChunks(m, len);
  std::vector<std::vector<uint8_t>> parity(k, std::vector<uint8_t>(len));
  std::vector<std::span<const uint8_t>> ds(data.begin(), data.end());
  std::vector<std::span<uint8_t>> ps(parity.begin(), parity.end());
  for (auto _ : state) {
    code.Encode(ds, ps);
    benchmark::DoNotOptimize(parity[0].data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(m * len));
}
BENCHMARK(BM_RsEncodeCauchy)->Args({4, 1})->Args({3, 2});

void BM_RsReconstruct(benchmark::State& state) {
  size_t m = static_cast<size_t>(state.range(0));
  size_t k = static_cast<size_t>(state.range(1));
  size_t erased = static_cast<size_t>(state.range(2));
  size_t len = 64 * 1024;
  RsCode code(m, k);
  auto data = RandomChunks(m, len);
  std::vector<std::vector<uint8_t>> parity(k, std::vector<uint8_t>(len));
  std::vector<std::span<const uint8_t>> ds(data.begin(), data.end());
  std::vector<std::span<uint8_t>> ps(parity.begin(), parity.end());
  code.Encode(ds, ps);

  // Erase the first `erased` data fragments; decode from the rest.
  std::vector<std::pair<size_t, std::span<const uint8_t>>> present;
  for (size_t f = erased; f < m; ++f) present.emplace_back(f, data[f]);
  for (size_t p = 0; p < k; ++p) present.emplace_back(m + p, parity[p]);
  std::vector<size_t> missing;
  for (size_t f = 0; f < erased; ++f) missing.push_back(f);
  std::vector<std::vector<uint8_t>> out(erased, std::vector<uint8_t>(len));
  std::vector<std::span<uint8_t>> os(out.begin(), out.end());

  for (auto _ : state) {
    benchmark::DoNotOptimize(code.Reconstruct(present, missing, os).ok());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(erased * len));
}
BENCHMARK(BM_RsReconstruct)->Args({3, 2, 1})->Args({3, 2, 2})->Args({4, 1, 1});

}  // namespace
