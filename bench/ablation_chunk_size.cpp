// Ablation: chunk size sweep. The paper uses 64 KiB chunks in Figs 5-7/9
// and 1 MiB in Fig 8; this bench shows how chunk size trades parity
// overhead (short final stripes) against per-chunk fixed IO costs.
#include "figure_common.h"

#include "common/units.h"

using namespace reo;
using namespace reo::bench;

int main() {
  MediSynConfig wl = MediumLocalityConfig();
  wl.num_requests = 20000;  // trimmed sweep; shapes are stable
  auto trace = GenerateMediSyn(wl);

  const std::vector<uint64_t> chunk_sizes{16 * 1024, 64 * 1024, 256 * 1024,
                                          1024 * 1024, 4096 * 1024};
  std::printf("Chunk-size ablation (medium workload, Reo-20%%, cache 10%%)\n\n");
  std::printf("%-10s %10s %12s %10s %12s %10s\n", "Chunk", "Hit(%)",
              "BW(MB/s)", "Lat(ms)", "SpaceEff(%)", "OSD-IOs");

  for (uint64_t chunk : chunk_sizes) {
    Config cfg{"Reo-20%", ProtectionMode::kReo, 0.20};
    CacheSimulator sim(trace, MakeSimConfig(cfg, 0.10, chunk));
    auto r = sim.Run();
    std::printf("%-10s %10.1f %12.1f %10.2f %12.1f %10llu\n",
                HumanBytes(chunk).c_str(), r.total.HitRatio() * 100,
                r.total.BandwidthMBps(), r.total.AvgLatencyMs(),
                r.space.SpaceEfficiency() * 100,
                static_cast<unsigned long long>(r.osd.commands));
  }
  return 0;
}
