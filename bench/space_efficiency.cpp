// Space efficiency (paper §VI.B, text): "Reo-10% achieves 90.5%, 91.0%,
// and 90% average space efficiency for weak, medium, and strong workload";
// Reo-20% / Reo-40% close to their specified parity percentage; uniform
// baselines pinned at 100/80/60/20 %.
#include "figure_common.h"

using namespace reo;
using namespace reo::bench;

int main() {
  std::vector<Config> configs = PaperConfigs();
  configs.push_back({"full-repl", ProtectionMode::kFullReplication, 0.0});

  const std::vector<MediSynConfig> workloads{
      WeakLocalityConfig(), MediumLocalityConfig(), StrongLocalityConfig()};

  std::printf("Space efficiency (%% user data of occupied flash), cache 10%%\n\n");
  std::printf("%-12s", "Config");
  for (const auto& w : workloads) std::printf("%10s", w.name.c_str());
  std::printf("\n");

  for (const auto& cfg : configs) {
    std::printf("%-12s", cfg.label.c_str());
    for (const auto& w : workloads) {
      auto trace = GenerateMediSyn(w);
      CacheSimulator sim(trace, MakeSimConfig(cfg, 0.10));
      auto report = sim.Run();
      std::printf("%9.1f%%", report.space.SpaceEfficiency() * 100);
    }
    std::printf("\n");
  }
  std::printf("\npaper reference: 0/1/2-parity = 100/80/60%%, full-repl = 20%%,\n"
              "Reo-10%% ~ 90.5/91.0/90%%; Reo-20%%/40%% close to 80/60%%.\n");
  return 0;
}
