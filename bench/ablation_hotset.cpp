// Ablation: the adaptive H_hot threshold (paper §IV.C.1) vs disabling the
// hot set entirely (everything clean stays cold / unprotected).
//
// The hot set's value is *availability after a failure*: the protected
// objects keep serving while unprotected data is gone. Measured with the
// retention methodology of Fig 8: warm cache, one device failure,
// admissions frozen so re-warming cannot mask the loss.
#include "figure_common.h"

using namespace reo;
using namespace reo::bench;

int main() {
  MediSynConfig wl = MediumLocalityConfig();
  wl.num_requests = 30000;
  auto trace = GenerateMediSyn(wl);

  std::printf("Hot-set ablation (medium workload, Reo-20%%, cache 10%%,\n"
              "failure at request 15k, admissions frozen afterwards)\n\n");
  std::printf("%-26s %14s %13s %10s\n", "Variant", "hit-before(%)",
              "hit-after(%)", "drop(pp)");

  for (auto [interval, label] :
       {std::pair<uint64_t, const char*>{2000, "adaptive H_hot (refresh)"},
        std::pair<uint64_t, const char*>{0, "no hot set (all cold)"}}) {
    Config cfg{"Reo-20%", ProtectionMode::kReo, 0.20};
    SimulationConfig sim = MakeSimConfig(cfg, 0.10);
    sim.warmup_pass = true;
    sim.cache.hhot_refresh_interval = interval;
    sim.cache.admit_while_degraded = false;
    sim.probe_window_requests = 2000;
    sim.failures = {{.at_request = 15000, .device = 0}};
    CacheSimulator s(trace, sim);
    auto r = s.Run();
    double before = r.windows[0].HitRatio() * 100;
    double after = r.windows[1].HitRatio() * 100;  // probe window
    std::printf("%-26s %14.1f %13.1f %10.1f\n", label, before, after,
                before - after);
  }
  std::printf("\nWithout the hot set the reserve protects nothing: the first\n"
              "failure wipes the unprotected cache, while the adaptive\n"
              "threshold keeps the protected hot set serving (graceful\n"
              "degradation, paper §IV.C.1 / §VI.C).\n");
  return 0;
}
