// Ablation: direct vs delta parity updating (paper §II.B: "we choose the
// encoding method that incurs the least disk reads").
//
// Measures the CPU cost of both methods across geometries and prints the
// chunk-read counts the cost model uses, showing where the crossover lies.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "ec/parity_update.h"

namespace {

using namespace reo;

std::vector<std::vector<uint8_t>> RandomChunks(size_t n, size_t len) {
  Pcg32 rng(7);
  std::vector<std::vector<uint8_t>> chunks(n, std::vector<uint8_t>(len));
  for (auto& c : chunks) {
    for (auto& b : c) b = static_cast<uint8_t>(rng.Next());
  }
  return chunks;
}

void BM_DirectUpdate(benchmark::State& state) {
  size_t m = static_cast<size_t>(state.range(0));
  size_t k = static_cast<size_t>(state.range(1));
  size_t len = 64 * 1024;
  RsCode code(m, k);
  auto data = RandomChunks(m, len);
  std::vector<std::vector<uint8_t>> parity(k, std::vector<uint8_t>(len));
  std::vector<std::span<const uint8_t>> ds(data.begin(), data.end());
  std::vector<std::span<uint8_t>> ps(parity.begin(), parity.end());
  for (auto _ : state) {
    // Direct: re-encode all parity from all data chunks.
    code.Encode(ds, ps);
    benchmark::DoNotOptimize(parity[0].data());
  }
}
BENCHMARK(BM_DirectUpdate)->Args({4, 1})->Args({3, 2})->Args({8, 2});

void BM_DeltaUpdate(benchmark::State& state) {
  size_t m = static_cast<size_t>(state.range(0));
  size_t k = static_cast<size_t>(state.range(1));
  size_t len = 64 * 1024;
  RsCode code(m, k);
  auto data = RandomChunks(m + 1, len);  // last one is the "new" content
  std::vector<std::vector<uint8_t>> parity(k, std::vector<uint8_t>(len));
  std::vector<std::span<const uint8_t>> ds(data.begin(), data.begin() + static_cast<long>(m));
  std::vector<std::span<uint8_t>> ps(parity.begin(), parity.end());
  code.Encode(ds, ps);
  for (auto _ : state) {
    // Delta: apply P' = P + g * (D' ^ D) for each parity chunk.
    for (size_t p = 0; p < k; ++p) {
      ApplyDeltaUpdate(code, p, 0, data[0], data[m], parity[p]);
    }
    benchmark::DoNotOptimize(parity[0].data());
  }
}
BENCHMARK(BM_DeltaUpdate)->Args({4, 1})->Args({3, 2})->Args({8, 2});

/// Prints the disk-read cost table behind ChooseStrategy.
void BM_CostTable(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(ChooseStrategy(4, 2));
  }
  std::printf("\nparity-update read costs (m live data chunks, k parity):\n");
  std::printf("%6s %6s %12s %12s %10s\n", "m", "k", "direct-reads",
              "delta-reads", "choice");
  for (size_t m = 1; m <= 8; ++m) {
    for (size_t k = 1; k <= 3; ++k) {
      auto c = ComputeUpdateCost(m, k);
      std::printf("%6zu %6zu %12zu %12zu %10s\n", m, k, c.direct_reads,
                  c.delta_reads,
                  ChooseStrategy(m, k) == ParityUpdateStrategy::kDelta
                      ? "delta"
                      : "direct");
    }
  }
}
BENCHMARK(BM_CostTable)->Iterations(1);

}  // namespace
