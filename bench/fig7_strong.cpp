// Figure 7: hit ratio, bandwidth, and latency vs cache size for the
// strong-locality workload under normal run (paper §VI.B).
#include "figure_common.h"

int main() {
  reo::bench::RunNormalFigure("Fig 7", reo::StrongLocalityConfig());
  return 0;
}
