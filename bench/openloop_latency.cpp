// Extension bench: latency vs offered load (open-loop arrivals).
//
// The paper's evaluation replays traces closed-loop; production caching
// tiers face an arrival *rate*. This bench offers the medium workload at
// increasing request rates and reports mean and p99 latency for Reo-20%
// and the 1-parity baseline — showing where each saturates (the knee sits
// at the policy's effective throughput, which tracks its hit ratio).
#include <sys/resource.h>

#include <cstring>

#include "figure_common.h"
#include "telemetry/bench_json.h"

using namespace reo;
using namespace reo::bench;

namespace {

double CpuSeconds() {
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
  return static_cast<double>(ru.ru_utime.tv_sec + ru.ru_stime.tv_sec) +
         static_cast<double>(ru.ru_utime.tv_usec + ru.ru_stime.tv_usec) / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  // --bench-out PATH: also emit a BENCH_serve.json report (bench_json.h)
  // for the Reo-20% run at the reference offered load, so CI can validate
  // the simulator serving path with the same schema as reo_loadgen.
  const char* bench_out = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--bench-out") && i + 1 < argc) {
      bench_out = argv[++i];
    }
  }

  MediSynConfig wl = MediumLocalityConfig();
  wl.num_requests = 20000;
  auto trace = GenerateMediSyn(wl);

  const std::vector<Config> configs{
      {"Reo-20%", ProtectionMode::kReo, 0.20},
      {"1-parity", ProtectionMode::kUniform1, 0.0},
  };
  // Offered load as mean inter-arrival time (ms). The closed-loop service
  // time is ~12-14 ms/request, so the sweep crosses saturation.
  const std::vector<double> interarrival_ms{40, 30, 25, 20, 16, 14, 12};

  std::printf("Open-loop latency vs offered load (medium workload, cache 10%%)\n\n");
  std::printf("%-10s", "offered");
  for (const auto& c : configs) {
    std::printf("  %14s mean/p99(ms)", c.label.c_str());
  }
  std::printf("\n");

  // Reference point for the machine-readable report: Reo-20% below the
  // saturation knee.
  constexpr double kReportGapMs = 20.0;
  double cpu_before = CpuSeconds();
  for (double gap_ms : interarrival_ms) {
    double offered_rps = 1000.0 / gap_ms;
    std::printf("%6.1f r/s", offered_rps);
    for (const auto& cfg : configs) {
      SimulationConfig sim = MakeSimConfig(cfg, 0.10);
      sim.warmup_pass = true;
      sim.arrival_interval_ns = static_cast<SimTime>(gap_ms * 1e6);
      CacheSimulator s(trace, sim);
      auto r = s.Run();
      std::printf("  %14.1f / %-10.1f", r.total.AvgLatencyMs(),
                  r.total.P99LatencyMs());
      if (bench_out != nullptr && gap_ms == kReportGapMs &&
          cfg.mode == ProtectionMode::kReo) {
        const WindowMetrics& m = r.total;
        BenchServeReport report;
        report.bench = "openloop_latency";
        char desc[120];
        std::snprintf(desc, sizeof(desc),
                      "medium workload, cache 10%%, Reo-20%%, offered "
                      "%.1f r/s (simulated)",
                      offered_rps);
        report.workload = desc;
        report.ops = m.requests;
        report.wall_seconds = ToSec(m.end - m.start);  // simulated time
        report.cpu_seconds = CpuSeconds() - cpu_before;
        report.throughput_ops_per_sec =
            report.wall_seconds > 0
                ? static_cast<double>(m.requests) / report.wall_seconds
                : 0.0;
        report.p50_us = m.latency_us.Percentile(0.50);
        report.p99_us = m.latency_us.Percentile(0.99);
        report.p999_us = m.latency_us.Percentile(0.999);
        report.bytes_per_op =
            m.requests > 0 ? static_cast<double>(m.bytes) /
                                 static_cast<double>(m.requests)
                           : 0.0;
        report.allocs_per_op = -1.0;  // not measured in the simulator
        Status wf = WriteBenchServeJson(bench_out, report);
        if (!wf.ok()) {
          std::fprintf(stderr, "bench report write failed: %s\n",
                       wf.to_string().c_str());
          return 1;
        }
        std::printf("  [report -> %s]", bench_out);
      }
    }
    std::printf("\n");
  }
  std::printf("\nLatency stays near service time until the offered rate\n"
              "approaches the policy's throughput, then queueing blows up.\n"
              "Reo-20%% tracks 1-parity across the whole curve — the paper's\n"
              "\"nearly identical performance\" claim, under open-loop load.\n");
  return 0;
}
