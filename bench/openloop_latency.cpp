// Extension bench: latency vs offered load (open-loop arrivals).
//
// The paper's evaluation replays traces closed-loop; production caching
// tiers face an arrival *rate*. This bench offers the medium workload at
// increasing request rates and reports mean and p99 latency for Reo-20%
// and the 1-parity baseline — showing where each saturates (the knee sits
// at the policy's effective throughput, which tracks its hit ratio).
#include "figure_common.h"

using namespace reo;
using namespace reo::bench;

int main() {
  MediSynConfig wl = MediumLocalityConfig();
  wl.num_requests = 20000;
  auto trace = GenerateMediSyn(wl);

  const std::vector<Config> configs{
      {"Reo-20%", ProtectionMode::kReo, 0.20},
      {"1-parity", ProtectionMode::kUniform1, 0.0},
  };
  // Offered load as mean inter-arrival time (ms). The closed-loop service
  // time is ~12-14 ms/request, so the sweep crosses saturation.
  const std::vector<double> interarrival_ms{40, 30, 25, 20, 16, 14, 12};

  std::printf("Open-loop latency vs offered load (medium workload, cache 10%%)\n\n");
  std::printf("%-10s", "offered");
  for (const auto& c : configs) {
    std::printf("  %14s mean/p99(ms)", c.label.c_str());
  }
  std::printf("\n");

  for (double gap_ms : interarrival_ms) {
    double offered_rps = 1000.0 / gap_ms;
    std::printf("%6.1f r/s", offered_rps);
    for (const auto& cfg : configs) {
      SimulationConfig sim = MakeSimConfig(cfg, 0.10);
      sim.warmup_pass = true;
      sim.arrival_interval_ns = static_cast<SimTime>(gap_ms * 1e6);
      CacheSimulator s(trace, sim);
      auto r = s.Run();
      std::printf("  %14.1f / %-10.1f", r.total.AvgLatencyMs(),
                  r.total.P99LatencyMs());
    }
    std::printf("\n");
  }
  std::printf("\nLatency stays near service time until the offered rate\n"
              "approaches the policy's throughput, then queueing blows up.\n"
              "Reo-20%% tracks 1-parity across the whole curve — the paper's\n"
              "\"nearly identical performance\" claim, under open-loop load.\n");
  return 0;
}
