// Microbenchmark pinning the non-zeroing PayloadBuffer win on the read
// path: GetObject materializes a fresh payload buffer and then overwrites
// every byte with chunk copies, so a value-initializing resize() pays one
// full memset per read purely to be overwritten. The pair below measures
// resize-then-fill with the zeroing and non-zeroing allocators at the
// default chunk size.
#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "common/buffer.h"
#include "common/rng.h"

namespace {

using reo::PayloadBuffer;
using reo::Pcg32;

std::vector<uint8_t> RandomSource(size_t len) {
  Pcg32 rng(42);
  std::vector<uint8_t> src(len);
  for (auto& b : src) b = static_cast<uint8_t>(rng.Next());
  return src;
}

void BM_ReadFillZeroingVector(benchmark::State& state) {
  size_t len = static_cast<size_t>(state.range(0));
  auto src = RandomSource(len);
  for (auto _ : state) {
    std::vector<uint8_t> payload;
    payload.resize(len);  // memset to 0 first...
    std::memcpy(payload.data(), src.data(), len);  // ...then overwritten
    benchmark::DoNotOptimize(payload.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(len));
}
BENCHMARK(BM_ReadFillZeroingVector)->Arg(4 * 1024)->Arg(64 * 1024)->Arg(1024 * 1024);

void BM_ReadFillPayloadBuffer(benchmark::State& state) {
  size_t len = static_cast<size_t>(state.range(0));
  auto src = RandomSource(len);
  for (auto _ : state) {
    PayloadBuffer payload;
    payload.resize(len);  // default-init: no memset
    std::memcpy(payload.data(), src.data(), len);
    benchmark::DoNotOptimize(payload.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(len));
}
BENCHMARK(BM_ReadFillPayloadBuffer)->Arg(4 * 1024)->Arg(64 * 1024)->Arg(1024 * 1024);

}  // namespace
