// Figure 5: hit ratio, bandwidth, and latency vs cache size for the
// weak-locality workload under normal run (paper §VI.B).
#include "figure_common.h"

int main() {
  reo::bench::RunNormalFigure("Fig 5", reo::WeakLocalityConfig());
  return 0;
}
