// Tracing hot-path overhead (DESIGN.md "Tracing & Events").
//
// The cost contract mirrors the telemetry layer: a component whose
// SpanRecorder* was never attached pays one branch per potential span;
// attached-but-unsampled costs one extra load; only sampled requests fill
// records. These microbenches pin each tier so a regression (an
// accidental allocation or map lookup on the unattached path) shows up as
// an order-of-magnitude jump.
#include <benchmark/benchmark.h>

#include "trace/tracer.h"

using namespace reo;

// Tier 0: the component idiom with no tracer attached — the single branch.
static void BM_LeafUnattached(benchmark::State& state) {
  SpanRecorder* trace = nullptr;
  benchmark::DoNotOptimize(trace);
  SimTime t = 0;
  for (auto _ : state) {
    if (trace) trace->Record(TraceOp::kDeviceRead, t, t + 5);
    ++t;
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_LeafUnattached);

// Tier 1: attached, but no trace is active (request not sampled / idle).
static void BM_LeafAttachedIdle(benchmark::State& state) {
  Tracer tracer;
  SpanRecorder* trace = &tracer.RecorderFor(TraceComponent::kFlashDevice);
  SimTime t = 0;
  for (auto _ : state) {
    trace->Record(TraceOp::kDeviceRead, t, t + 5);
    ++t;
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_LeafAttachedIdle);

// Tier 2: attached and sampled — the full record fill.
static void BM_LeafSampled(benchmark::State& state) {
  Tracer tracer;
  SpanRecorder* root = &tracer.RecorderFor(TraceComponent::kCacheManager);
  SpanRecorder* trace = &tracer.RecorderFor(TraceComponent::kFlashDevice);
  RequestTrace rt(&tracer, root, TraceOp::kGet, 0);
  SimTime t = 0;
  for (auto _ : state) {
    trace->Record(TraceOp::kDeviceRead, t, t + 5);
    ++t;
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_LeafSampled);

// Nested guard under an active trace (parent chain save/restore).
static void BM_NestedSpanSampled(benchmark::State& state) {
  Tracer tracer;
  SpanRecorder* root = &tracer.RecorderFor(TraceComponent::kCacheManager);
  SpanRecorder* trace = &tracer.RecorderFor(TraceComponent::kDataPlane);
  RequestTrace rt(&tracer, root, TraceOp::kGet, 0);
  SimTime t = 0;
  for (auto _ : state) {
    TraceSpan span(trace, TraceOp::kDataRead, t);
    span.set_end(t + 5);
    ++t;
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_NestedSpanSampled);

// Root open/close per request, every request sampled.
static void BM_RootSampled(benchmark::State& state) {
  Tracer tracer;
  SpanRecorder* root = &tracer.RecorderFor(TraceComponent::kCacheManager);
  SimTime t = 0;
  for (auto _ : state) {
    RequestTrace rt(&tracer, root, TraceOp::kGet, t);
    rt.set_end(t + 5);
    ++t;
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_RootSampled);

// Root open/close with 1-in-1024 sampling: the common production knob.
static void BM_RootMostlyUnsampled(benchmark::State& state) {
  Tracer tracer({.sample_every = 1024});
  SpanRecorder* root = &tracer.RecorderFor(TraceComponent::kCacheManager);
  SimTime t = 0;
  for (auto _ : state) {
    RequestTrace rt(&tracer, root, TraceOp::kGet, t);
    rt.set_end(t + 5);
    ++t;
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_RootMostlyUnsampled);
