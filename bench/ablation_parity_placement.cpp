// Ablation: parity placement vs device aging (Differential RAID, the
// paper's related work [34]).
//
// Round-robin parity (the paper's §IV.C.3 default) distributes writes —
// and therefore wear — evenly, so same-age SSDs approach their P/E limits
// together: a correlated-failure risk. Age-skewed placement concentrates
// parity writes on designated devices, staggering wear-out. This bench
// writes a churn workload under 1-parity with both placements and prints
// the per-device write volume.
#include <cstdio>

#include "array/stripe_manager.h"
#include "backend/backend_store.h"
#include "common/rng.h"

using namespace reo;

namespace {

constexpr uint64_t kChunk = 64 * 1024;

ObjectId Oid(uint64_t n) { return ObjectId{kFirstUserId, 0x20000 + n}; }

void Run(ParityPlacement placement, const char* label) {
  FlashDeviceConfig dev;
  dev.capacity_bytes = 1ULL << 30;
  FlashArray array(5, dev);
  StripeManagerConfig cfg;
  cfg.chunk_logical_bytes = kChunk;
  cfg.scale_shift = 6;
  cfg.parity_placement = placement;
  StripeManager stripes(array, cfg);

  // Populate, then churn with partial updates: every update rewrites one
  // data chunk plus the stripe's parity, so parity placement decides which
  // device absorbs that write amplification.
  Pcg32 rng(5);
  for (uint64_t n = 0; n < 64; ++n) {
    uint64_t logical = 12 * kChunk;
    auto payload = BackendStore::SynthesizePayload(Oid(n), 0,
                                                   stripes.PhysicalSize(logical));
    REO_CHECK(stripes.PutObject(Oid(n), payload, logical,
                                RedundancyLevel::kParity1, 0).ok());
  }
  std::vector<uint8_t> update(stripes.chunk_physical_bytes() / 2, 0x5C);
  for (int i = 0; i < 8000; ++i) {
    uint64_t n = rng.NextBounded(64);
    uint64_t extent = stripes.PhysicalSize(12 * kChunk);
    uint64_t offset = rng.NextBounded(static_cast<uint32_t>(extent - update.size()));
    REO_CHECK(stripes.UpdateObjectRange(Oid(n), offset, update, 0).ok());
  }

  uint64_t total = 0, peak = 0;
  for (DeviceIndex d = 0; d < array.size(); ++d) {
    total += array.device(d).wear().bytes_written;
    peak = std::max(peak, array.device(d).wear().bytes_written);
  }
  std::printf("%-12s per-device GB written:", label);
  for (DeviceIndex d = 0; d < array.size(); ++d) {
    std::printf(" %6.2f", static_cast<double>(array.device(d).wear().bytes_written) / 1e9);
  }
  std::printf("   peak/mean %.2f\n",
              static_cast<double>(peak) * 5.0 / static_cast<double>(total));
}

}  // namespace

int main() {
  std::printf("Parity placement vs device aging (1-parity churn workload)\n\n");
  Run(ParityPlacement::kRotating, "rotating");
  Run(ParityPlacement::kAgeSkewed, "age-skewed");
  std::printf("\nRotating placement wears all devices in lockstep (correlated\n"
              "wear-out); age-skewed placement staggers device aging at the\n"
              "cost of a hot parity device — Differential RAID's tradeoff.\n");
  return 0;
}
