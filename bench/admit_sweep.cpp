// Admission sweep: flash-write savings of the DRAM admission tier.
//
// Companion to the DRAM admission tier (DESIGN.md "DRAM admission tier"):
// sweeps DRAM budget x admission policy on the medium-locality workload
// and reports the paper's device-wear lens — flash writes per request —
// against the hit ratio each configuration sustains. The claim under
// test: a learned (flashiness) or budgeted (write-credit) policy cuts
// flash writes by >= 30% while staying within 1 point of the admit-all
// hit ratio. The bench exits nonzero if no swept configuration achieves
// that, so CI can hold the line.
#include <sys/resource.h>

#include <algorithm>
#include <cstring>

#include "common/units.h"
#include "figure_common.h"
#include "telemetry/bench_json.h"

using namespace reo;
using namespace reo::bench;

namespace {

double CpuSeconds() {
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
  return static_cast<double>(ru.ru_utime.tv_sec + ru.ru_stime.tv_sec) +
         static_cast<double>(ru.ru_utime.tv_usec + ru.ru_stime.tv_usec) / 1e6;
}

double Metric(const RunReport& r, const std::string& name) {
  const auto* e = r.telemetry.Find(name);
  return e != nullptr ? e->value : 0.0;
}

/// Sums a per-device flash metric ("writes", "bytes_written", ...).
double SumDevices(const RunReport& r, size_t num_devices, const char* leaf) {
  double total = 0.0;
  for (size_t d = 0; d < num_devices; ++d) {
    total += Metric(r, "flash.dev" + std::to_string(d) + "." + leaf);
  }
  return total;
}

double WritesPerOp(const RunReport& r, size_t num_devices) {
  return r.total.requests > 0
             ? SumDevices(r, num_devices, "writes") /
                   static_cast<double>(r.total.requests)
             : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  // --bench-out PATH: emit a BENCH_serve.json report (bench_json.h) for
  // the flashiness run at the middle DRAM budget, same schema as
  // reo_loadgen / openloop_latency, so bench_validate can lint it.
  const char* bench_out = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--bench-out") && i + 1 < argc) {
      bench_out = argv[++i];
    } else {
      std::fprintf(stderr, "unknown flag %s (admit_sweep takes --bench-out)\n",
                   argv[i]);
      return 2;
    }
  }

  MediSynConfig wl = MediumLocalityConfig();
  wl.num_requests = 20000;  // trimmed sweep; shapes are stable
  auto trace = GenerateMediSyn(wl);

  const Config base{"Reo-20%", ProtectionMode::kReo, 0.20};
  const size_t kNumDevices = 5;

  // DRAM budgets as fractions of the flash cache's *physical* footprint
  // (payloads are scaled by BenchScaleShift, so the staged bytes are too).
  uint64_t flash_physical = static_cast<uint64_t>(
      0.10 * static_cast<double>(trace.catalog.TotalBytes()));
  flash_physical >>= BenchScaleShift();
  const std::vector<double> dram_fracs{0.10, 0.25, 0.50};

  std::printf(
      "Admission sweep: DRAM budget x policy (medium workload, cache 10%%,"
      " Reo-20%%)\n\n");
  std::printf("%-12s %9s %8s %9s %10s %10s %9s %9s\n", "Policy", "DRAM",
              "Hit(%)", "DramHit%", "FlashW/op", "dWrites", "Graduated",
              "Dropped");

  // Control: tier off entirely. Every later row compares against the
  // admit-all row at its own DRAM size, but the off row pins the
  // pre-tier baseline (PR 6 behaviour) for regression eyes.
  double cpu_before = CpuSeconds();
  {
    SimulationConfig sim = MakeSimConfig(base, 0.10);
    CacheSimulator s(trace, sim);
    RunReport r = s.Run();
    std::printf("%-12s %9s %8.1f %9s %10.3f %10s %9s %9s\n", "off", "0",
                r.total.HitRatio() * 100, "-", WritesPerOp(r, kNumDevices),
                "-", "-", "-");
  }

  bool acceptance_met = false;
  const size_t report_idx = dram_fracs.size() / 2;
  for (size_t fi = 0; fi < dram_fracs.size(); ++fi) {
    uint64_t dram_bytes = std::max<uint64_t>(
        kMiB, static_cast<uint64_t>(dram_fracs[fi] *
                                    static_cast<double>(flash_physical)));

    // admit-all first: it sets this DRAM size's write baseline and the
    // observed flash-write rate the credit policy budgets against.
    SimulationConfig all_cfg = MakeSimConfig(base, 0.10);
    all_cfg.admission.dram_bytes = dram_bytes;
    all_cfg.admission.policy = AdmissionPolicyKind::kAdmitAll;
    CacheSimulator all_sim(trace, all_cfg);
    RunReport all_r = all_sim.Run();
    double all_wpo = WritesPerOp(all_r, kNumDevices);
    double all_hit = all_r.total.HitRatio() * 100;
    // The credit bucket pays only for tier-caused writes (graduations and
    // write-throughs), so budget against the graduation byte rate the
    // admit-all arm observed — 40% of it makes the bucket bind by
    // construction.
    double virtual_secs = ToSec(all_r.total.end - all_r.total.start);
    double write_bytes_per_sec =
        virtual_secs > 0 ? Metric(all_r, "admit.graduated_bytes") / virtual_secs
                         : 0.0;

    for (AdmissionPolicyKind policy :
         {AdmissionPolicyKind::kAdmitAll, AdmissionPolicyKind::kFlashiness,
          AdmissionPolicyKind::kWriteCredit}) {
      RunReport r;
      if (policy == AdmissionPolicyKind::kAdmitAll) {
        r = std::move(all_r);
      } else {
        SimulationConfig sim = MakeSimConfig(base, 0.10);
        sim.admission.dram_bytes = dram_bytes;
        sim.admission.policy = policy;
        if (policy == AdmissionPolicyKind::kWriteCredit) {
          // Budget at 40% of this DRAM size's observed admit-all write
          // rate: binding by construction, so the bucket actually gates.
          sim.admission.flash_write_budget_bps = std::max<uint64_t>(
              1, static_cast<uint64_t>(0.4 * write_bytes_per_sec));
        }
        CacheSimulator s(trace, sim);
        r = s.Run();
      }

      double wpo = WritesPerOp(r, kNumDevices);
      double hit = r.total.HitRatio() * 100;
      double dram_total = Metric(r, "dram.hits") + Metric(r, "dram.misses");
      double dram_hit =
          dram_total > 0 ? Metric(r, "dram.hits") / dram_total * 100 : 0.0;
      double delta = all_wpo > 0 ? (wpo - all_wpo) / all_wpo * 100 : 0.0;
      char dram_label[16], delta_label[16];
      std::snprintf(dram_label, sizeof(dram_label), "%lluKiB",
                    static_cast<unsigned long long>(dram_bytes / kKiB));
      std::snprintf(delta_label, sizeof(delta_label), "%+.1f%%", delta);
      std::printf("%-12s %9s %8.1f %9.1f %10.3f %10s %9.0f %9.0f\n",
                  std::string(to_string(policy)).c_str(), dram_label, hit,
                  dram_hit, wpo,
                  policy == AdmissionPolicyKind::kAdmitAll ? "base"
                                                           : delta_label,
                  Metric(r, "admit.graduated"), Metric(r, "admit.dropped"));

      if (policy != AdmissionPolicyKind::kAdmitAll && wpo <= all_wpo * 0.7 &&
          hit >= all_hit - 1.0) {
        acceptance_met = true;
      }

      if (bench_out != nullptr && fi == report_idx &&
          policy == AdmissionPolicyKind::kFlashiness) {
        const WindowMetrics& m = r.total;
        BenchServeReport report;
        report.bench = "admit_sweep";
        char desc[120];
        std::snprintf(desc, sizeof(desc),
                      "medium workload, cache 10%%, Reo-20%%, dram %s,"
                      " admission flashiness (simulated)",
                      dram_label);
        report.workload = desc;
        report.ops = m.requests;
        report.wall_seconds = ToSec(m.end - m.start);  // simulated time
        report.cpu_seconds = CpuSeconds() - cpu_before;
        report.throughput_ops_per_sec =
            report.wall_seconds > 0
                ? static_cast<double>(m.requests) / report.wall_seconds
                : 0.0;
        report.p50_us = m.latency_us.Percentile(0.50);
        report.p99_us = m.latency_us.Percentile(0.99);
        report.p999_us = m.latency_us.Percentile(0.999);
        report.bytes_per_op =
            m.requests > 0 ? static_cast<double>(m.bytes) /
                                 static_cast<double>(m.requests)
                           : 0.0;
        report.allocs_per_op = -1.0;  // not measured in the simulator
        Status wf = WriteBenchServeJson(bench_out, report);
        if (!wf.ok()) {
          std::fprintf(stderr, "bench report write failed: %s\n",
                       wf.to_string().c_str());
          return 1;
        }
        std::printf("  [report -> %s]\n", bench_out);
      }
    }
  }

  if (!acceptance_met) {
    std::fprintf(stderr,
                 "ADMIT SWEEP FAILED: no policy/DRAM point cut flash"
                 " writes/op by >= 30%% within 1 hit-ratio point of"
                 " admit-all\n");
    return 1;
  }
  std::printf(
      "\nAt least one learned/budgeted point cuts flash writes/op by >= 30%%"
      "\nwhile holding the hit ratio within 1 point of admit-all.\n");
  return 0;
}
