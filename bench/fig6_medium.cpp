// Figure 6: hit ratio, bandwidth, and latency vs cache size for the
// medium-locality workload under normal run (paper §VI.B).
#include "figure_common.h"

int main() {
  reo::bench::RunNormalFigure("Fig 6", reo::MediumLocalityConfig());
  return 0;
}
