// Shared harness for the paper-figure benches (Figs 5-9, §VI).
//
// Each figure binary sweeps the paper's configurations and prints one
// table per metric panel (hit ratio / bandwidth / latency), with the same
// series the figure plots. Absolute values come from the device models;
// the *shapes* are the reproduction target (see EXPERIMENTS.md).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/file_util.h"
#include "sim/cache_simulator.h"
#include "trace/chrome_trace.h"
#include "workload/medisyn.h"

namespace reo::bench {

/// One line of a figure: a named protection configuration.
struct Config {
  std::string label;
  ProtectionMode mode;
  double reserve = 0.0;
};

/// The six series of Figs 5-8.
inline std::vector<Config> PaperConfigs() {
  return {
      {"0-parity", ProtectionMode::kUniform0, 0.0},
      {"1-parity", ProtectionMode::kUniform1, 0.0},
      {"2-parity", ProtectionMode::kUniform2, 0.0},
      {"Reo-10%", ProtectionMode::kReo, 0.10},
      {"Reo-20%", ProtectionMode::kReo, 0.20},
      {"Reo-40%", ProtectionMode::kReo, 0.40},
  };
}

/// Data-plane scale shift for benches: 1:128 by default, overridable with
/// REO_SCALE_SHIFT (0 = full-size payloads; slower, more memory).
inline uint32_t BenchScaleShift() {
  if (const char* env = std::getenv("REO_SCALE_SHIFT")) {
    return static_cast<uint32_t>(std::strtoul(env, nullptr, 10));
  }
  return 7;
}

/// Prints one run's end-of-run telemetry snapshot (per-class cache
/// counters, per-device flash counters, latency histograms, ...). JSON by
/// default; set REO_TELEMETRY_FORMAT=csv for the tabular form.
inline void PrintTelemetry(const std::string& label,
                           const MetricSnapshot& snapshot) {
  const char* fmt = std::getenv("REO_TELEMETRY_FORMAT");
  bool csv = fmt != nullptr && std::strcmp(fmt, "csv") == 0;
  std::printf("\n(telemetry: %s)\n%s\n", label.c_str(),
              csv ? snapshot.ToCsv().c_str() : snapshot.ToJson().c_str());
}

/// Optional request tracing of one representative run, switched on from a
/// figure bench's command line:
///   fig8_failure --trace-out fig8.json --events-out fig8.events [--trace-sample N]
struct TraceArgs {
  std::string trace_out;
  std::string events_out;
  uint64_t sample_every = 1;
  bool enabled() const { return !trace_out.empty() || !events_out.empty(); }
};

inline TraceArgs ParseTraceArgs(int argc, char** argv) {
  TraceArgs args;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--trace-out")) {
      args.trace_out = next();
    } else if (!std::strcmp(argv[i], "--events-out")) {
      args.events_out = next();
    } else if (!std::strcmp(argv[i], "--trace-sample")) {
      args.sample_every = std::strtoull(next(), nullptr, 10);
      if (args.sample_every == 0) args.sample_every = 1;
    } else {
      std::fprintf(stderr, "unknown flag %s (figure benches take "
                   "--trace-out/--events-out/--trace-sample)\n", argv[i]);
      std::exit(2);
    }
  }
  return args;
}

inline void ApplyTracing(SimulationConfig& sim, const TraceArgs& args) {
  if (!args.enabled()) return;
  sim.enable_tracing = true;
  sim.tracer.sample_every = args.sample_every;
}

/// Writes the traced run's exports (atomic; call before the simulator dies).
inline void ExportTrace(const CacheSimulator& sim, const TraceArgs& args) {
  if (!args.trace_out.empty()) {
    Status st = WriteFileAtomic(args.trace_out, ChromeTraceJson(sim.tracer()));
    if (!st.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n", st.to_string().c_str());
      std::exit(1);
    }
    std::printf("chrome trace -> %s\n", args.trace_out.c_str());
  }
  if (!args.events_out.empty()) {
    std::string text = sim.tracer().events().ToText();
    text += "\n";
    text += TraceReportText(sim.tracer());
    Status st = WriteFileAtomic(args.events_out, text);
    if (!st.ok()) {
      std::fprintf(stderr, "events write failed: %s\n", st.to_string().c_str());
      std::exit(1);
    }
    std::printf("event log -> %s\n", args.events_out.c_str());
  }
}

inline SimulationConfig MakeSimConfig(const Config& cfg, double cache_fraction,
                                      uint64_t chunk_bytes = 64 * 1024) {
  SimulationConfig sim;
  sim.name = cfg.label;
  sim.policy = {.mode = cfg.mode, .reo_reserve_fraction = cfg.reserve};
  sim.cache_fraction = cache_fraction;
  sim.chunk_logical_bytes = chunk_bytes;
  sim.scale_shift = BenchScaleShift();
  return sim;
}

/// Runs the Figs 5-7 sweep (normal run; cache size 4-12 % of the dataset)
/// and prints the three panels.
inline void RunNormalFigure(const char* figure, const MediSynConfig& workload) {
  auto trace = GenerateMediSyn(workload);
  const std::vector<double> fractions{0.04, 0.06, 0.08, 0.10, 0.12};
  auto configs = PaperConfigs();

  std::printf("%s: %s-locality workload, %zu requests, dataset %.2f GB\n",
              figure, workload.name.c_str(), trace.requests.size(),
              static_cast<double>(trace.catalog.TotalBytes()) / 1e9);

  // results[c][f]
  std::vector<std::vector<RunReport>> results(configs.size());
  for (size_t c = 0; c < configs.size(); ++c) {
    for (double f : fractions) {
      CacheSimulator sim(trace, MakeSimConfig(configs[c], f));
      results[c].push_back(sim.Run());
    }
  }

  auto print_panel = [&](const char* title, auto value) {
    std::printf("\n(%s)\n%-12s", title, "CacheSize");
    for (double f : fractions) std::printf("%9.0f%%", f * 100);
    std::printf("\n");
    for (size_t c = 0; c < configs.size(); ++c) {
      std::printf("%-12s", configs[c].label.c_str());
      for (size_t i = 0; i < fractions.size(); ++i) {
        std::printf("%10.1f", value(results[c][i]));
      }
      std::printf("\n");
    }
  };
  print_panel("a: Hit Ratio (%)",
              [](const RunReport& r) { return r.total.HitRatio() * 100; });
  print_panel("b: Bandwidth (MB/sec)",
              [](const RunReport& r) { return r.total.BandwidthMBps(); });
  print_panel("c: Latency (ms)",
              [](const RunReport& r) { return r.total.AvgLatencyMs(); });

  std::printf("\n(space efficiency at run end)\n");
  for (size_t c = 0; c < configs.size(); ++c) {
    std::printf("%-12s", configs[c].label.c_str());
    for (size_t i = 0; i < fractions.size(); ++i) {
      std::printf("%9.1f%%", results[c][i].space.SpaceEfficiency() * 100);
    }
    std::printf("\n");
  }

  // One representative snapshot (Reo-20% at the 10% cache point).
  PrintTelemetry(configs[4].label + ", cache=10%", results[4][3].telemetry);
}

}  // namespace reo::bench
