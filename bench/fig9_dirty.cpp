// Figure 9: dirty data protection — Reo vs uniform full replication under
// write-intensive workloads (paper §VI.D).
//
// Five medium-locality traces with write ratios 10-50 %, cache 10 % of the
// dataset, 64 KiB chunks. Full replication must treat everything as dirty;
// Reo replicates only the dirty objects.
#include "figure_common.h"

using namespace reo;
using namespace reo::bench;

int main(int argc, char** argv) {
  TraceArgs targs = ParseTraceArgs(argc, argv);
  const std::vector<double> ratios{0.10, 0.20, 0.30, 0.40, 0.50};
  const std::vector<Config> configs{
      {"Full replication", ProtectionMode::kFullReplication, 0.0},
      {"Reo", ProtectionMode::kReo, 0.20},
  };

  std::printf("Fig 9: write-intensive workloads (medium locality, cache 10%%)\n");

  std::vector<std::vector<RunReport>> results(configs.size());
  for (size_t c = 0; c < configs.size(); ++c) {
    for (double ratio : ratios) {
      auto trace = GenerateMediSyn(WriteIntensiveConfig(ratio));
      SimulationConfig cfg = MakeSimConfig(configs[c], 0.10);
      // Trace the representative run: Reo at the heaviest write ratio.
      bool traced = configs[c].mode == ProtectionMode::kReo && ratio == ratios.back();
      if (traced) ApplyTracing(cfg, targs);
      CacheSimulator sim(trace, cfg);
      results[c].push_back(sim.Run());
      if (traced) ExportTrace(sim, targs);
    }
  }

  auto print_panel = [&](const char* title, auto value) {
    std::printf("\n(%s)\n%-18s", title, "WriteRatio");
    for (double r : ratios) std::printf("%9.0f%%", r * 100);
    std::printf("\n");
    for (size_t c = 0; c < configs.size(); ++c) {
      std::printf("%-18s", configs[c].label.c_str());
      for (size_t i = 0; i < ratios.size(); ++i) {
        std::printf("%10.1f", value(results[c][i]));
      }
      std::printf("\n");
    }
  };
  print_panel("a: Hit Ratio (%)",
              [](const RunReport& r) { return r.total.HitRatio() * 100; });
  print_panel("b: Bandwidth (MB/sec)",
              [](const RunReport& r) { return r.total.BandwidthMBps(); });
  print_panel("c: Latency (ms)",
              [](const RunReport& r) { return r.total.AvgLatencyMs(); });

  // Headline ratios the paper reports (up to 3.1x hit ratio, 3.6x bandwidth).
  std::printf("\n(Reo : full-replication ratios)\n");
  for (size_t i = 0; i < ratios.size(); ++i) {
    double hr = results[1][i].total.HitRatio() /
                std::max(1e-9, results[0][i].total.HitRatio());
    double bw = results[1][i].total.BandwidthMBps() /
                std::max(1e-9, results[0][i].total.BandwidthMBps());
    std::printf("  write %2.0f%%: hit x%.2f   bandwidth x%.2f   dirty lost: %llu/%llu\n",
                ratios[i] * 100, hr, bw,
                static_cast<unsigned long long>(results[1][i].cache.dirty_lost),
                static_cast<unsigned long long>(results[0][i].cache.dirty_lost));
  }

  PrintTelemetry("Reo, write ratio 50%", results[1].back().telemetry);
  return 0;
}
