file(REMOVE_RECURSE
  "CMakeFiles/object_fs.dir/object_fs.cpp.o"
  "CMakeFiles/object_fs.dir/object_fs.cpp.o.d"
  "object_fs"
  "object_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/object_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
