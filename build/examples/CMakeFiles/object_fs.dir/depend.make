# Empty dependencies file for object_fs.
# This may be replaced when dependencies are built.
