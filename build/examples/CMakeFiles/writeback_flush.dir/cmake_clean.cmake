file(REMOVE_RECURSE
  "CMakeFiles/writeback_flush.dir/writeback_flush.cpp.o"
  "CMakeFiles/writeback_flush.dir/writeback_flush.cpp.o.d"
  "writeback_flush"
  "writeback_flush.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/writeback_flush.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
