# Empty compiler generated dependencies file for writeback_flush.
# This may be replaced when dependencies are built.
