file(REMOVE_RECURSE
  "CMakeFiles/reo_cli.dir/reo_cli.cpp.o"
  "CMakeFiles/reo_cli.dir/reo_cli.cpp.o.d"
  "reo_cli"
  "reo_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reo_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
