# Empty compiler generated dependencies file for reo_cli.
# This may be replaced when dependencies are built.
