file(REMOVE_RECURSE
  "CMakeFiles/cache_soak_test.dir/cache_soak_test.cpp.o"
  "CMakeFiles/cache_soak_test.dir/cache_soak_test.cpp.o.d"
  "cache_soak_test"
  "cache_soak_test.pdb"
  "cache_soak_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_soak_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
