file(REMOVE_RECURSE
  "CMakeFiles/cache_manager_test.dir/cache_manager_test.cpp.o"
  "CMakeFiles/cache_manager_test.dir/cache_manager_test.cpp.o.d"
  "cache_manager_test"
  "cache_manager_test.pdb"
  "cache_manager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
