file(REMOVE_RECURSE
  "CMakeFiles/osd_test.dir/osd_test.cpp.o"
  "CMakeFiles/osd_test.dir/osd_test.cpp.o.d"
  "osd_test"
  "osd_test.pdb"
  "osd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
