file(REMOVE_RECURSE
  "CMakeFiles/scrub_update_test.dir/scrub_update_test.cpp.o"
  "CMakeFiles/scrub_update_test.dir/scrub_update_test.cpp.o.d"
  "scrub_update_test"
  "scrub_update_test.pdb"
  "scrub_update_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scrub_update_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
