# Empty dependencies file for scrub_update_test.
# This may be replaced when dependencies are built.
