file(REMOVE_RECURSE
  "CMakeFiles/array_fuzz_test.dir/array_fuzz_test.cpp.o"
  "CMakeFiles/array_fuzz_test.dir/array_fuzz_test.cpp.o.d"
  "array_fuzz_test"
  "array_fuzz_test.pdb"
  "array_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/array_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
