# Empty compiler generated dependencies file for initiator_test.
# This may be replaced when dependencies are built.
