file(REMOVE_RECURSE
  "CMakeFiles/initiator_test.dir/initiator_test.cpp.o"
  "CMakeFiles/initiator_test.dir/initiator_test.cpp.o.d"
  "initiator_test"
  "initiator_test.pdb"
  "initiator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/initiator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
