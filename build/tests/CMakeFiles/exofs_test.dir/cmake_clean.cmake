file(REMOVE_RECURSE
  "CMakeFiles/exofs_test.dir/exofs_test.cpp.o"
  "CMakeFiles/exofs_test.dir/exofs_test.cpp.o.d"
  "exofs_test"
  "exofs_test.pdb"
  "exofs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exofs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
