# Empty dependencies file for exofs_test.
# This may be replaced when dependencies are built.
