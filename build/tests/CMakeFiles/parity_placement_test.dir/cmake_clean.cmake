file(REMOVE_RECURSE
  "CMakeFiles/parity_placement_test.dir/parity_placement_test.cpp.o"
  "CMakeFiles/parity_placement_test.dir/parity_placement_test.cpp.o.d"
  "parity_placement_test"
  "parity_placement_test.pdb"
  "parity_placement_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parity_placement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
