# Empty dependencies file for parity_placement_test.
# This may be replaced when dependencies are built.
