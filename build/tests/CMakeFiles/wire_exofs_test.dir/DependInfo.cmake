
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/wire_exofs_test.cpp" "tests/CMakeFiles/wire_exofs_test.dir/wire_exofs_test.cpp.o" "gcc" "tests/CMakeFiles/wire_exofs_test.dir/wire_exofs_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/reo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/reo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/reo_array.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/reo_ec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/reo_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/reo_osd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/reo_backend.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/reo_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/reo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
