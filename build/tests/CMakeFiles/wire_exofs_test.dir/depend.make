# Empty dependencies file for wire_exofs_test.
# This may be replaced when dependencies are built.
