file(REMOVE_RECURSE
  "CMakeFiles/wire_exofs_test.dir/wire_exofs_test.cpp.o"
  "CMakeFiles/wire_exofs_test.dir/wire_exofs_test.cpp.o.d"
  "wire_exofs_test"
  "wire_exofs_test.pdb"
  "wire_exofs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wire_exofs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
