# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/ec_test[1]_include.cmake")
include("/root/repo/build/tests/flash_test[1]_include.cmake")
include("/root/repo/build/tests/osd_test[1]_include.cmake")
include("/root/repo/build/tests/array_test[1]_include.cmake")
include("/root/repo/build/tests/backend_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/classifier_test[1]_include.cmake")
include("/root/repo/build/tests/data_plane_test[1]_include.cmake")
include("/root/repo/build/tests/cache_manager_test[1]_include.cmake")
include("/root/repo/build/tests/recovery_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/array_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/scrub_update_test[1]_include.cmake")
include("/root/repo/build/tests/ftl_test[1]_include.cmake")
include("/root/repo/build/tests/initiator_test[1]_include.cmake")
include("/root/repo/build/tests/trace_io_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/exofs_test[1]_include.cmake")
include("/root/repo/build/tests/cache_soak_test[1]_include.cmake")
include("/root/repo/build/tests/transport_test[1]_include.cmake")
include("/root/repo/build/tests/parity_placement_test[1]_include.cmake")
include("/root/repo/build/tests/wire_exofs_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
