file(REMOVE_RECURSE
  "CMakeFiles/reo_core.dir/core/cache_manager.cpp.o"
  "CMakeFiles/reo_core.dir/core/cache_manager.cpp.o.d"
  "CMakeFiles/reo_core.dir/core/classifier.cpp.o"
  "CMakeFiles/reo_core.dir/core/classifier.cpp.o.d"
  "CMakeFiles/reo_core.dir/core/data_plane.cpp.o"
  "CMakeFiles/reo_core.dir/core/data_plane.cpp.o.d"
  "CMakeFiles/reo_core.dir/core/lru.cpp.o"
  "CMakeFiles/reo_core.dir/core/lru.cpp.o.d"
  "CMakeFiles/reo_core.dir/core/policy.cpp.o"
  "CMakeFiles/reo_core.dir/core/policy.cpp.o.d"
  "CMakeFiles/reo_core.dir/core/recovery_scheduler.cpp.o"
  "CMakeFiles/reo_core.dir/core/recovery_scheduler.cpp.o.d"
  "libreo_core.a"
  "libreo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
