
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cache_manager.cpp" "src/CMakeFiles/reo_core.dir/core/cache_manager.cpp.o" "gcc" "src/CMakeFiles/reo_core.dir/core/cache_manager.cpp.o.d"
  "/root/repo/src/core/classifier.cpp" "src/CMakeFiles/reo_core.dir/core/classifier.cpp.o" "gcc" "src/CMakeFiles/reo_core.dir/core/classifier.cpp.o.d"
  "/root/repo/src/core/data_plane.cpp" "src/CMakeFiles/reo_core.dir/core/data_plane.cpp.o" "gcc" "src/CMakeFiles/reo_core.dir/core/data_plane.cpp.o.d"
  "/root/repo/src/core/lru.cpp" "src/CMakeFiles/reo_core.dir/core/lru.cpp.o" "gcc" "src/CMakeFiles/reo_core.dir/core/lru.cpp.o.d"
  "/root/repo/src/core/policy.cpp" "src/CMakeFiles/reo_core.dir/core/policy.cpp.o" "gcc" "src/CMakeFiles/reo_core.dir/core/policy.cpp.o.d"
  "/root/repo/src/core/recovery_scheduler.cpp" "src/CMakeFiles/reo_core.dir/core/recovery_scheduler.cpp.o" "gcc" "src/CMakeFiles/reo_core.dir/core/recovery_scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/reo_array.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/reo_osd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/reo_backend.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/reo_ec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/reo_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/reo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
