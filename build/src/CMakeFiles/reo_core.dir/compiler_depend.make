# Empty compiler generated dependencies file for reo_core.
# This may be replaced when dependencies are built.
