file(REMOVE_RECURSE
  "libreo_core.a"
)
