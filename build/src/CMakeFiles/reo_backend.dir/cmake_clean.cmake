file(REMOVE_RECURSE
  "CMakeFiles/reo_backend.dir/backend/backend_store.cpp.o"
  "CMakeFiles/reo_backend.dir/backend/backend_store.cpp.o.d"
  "CMakeFiles/reo_backend.dir/backend/network_link.cpp.o"
  "CMakeFiles/reo_backend.dir/backend/network_link.cpp.o.d"
  "libreo_backend.a"
  "libreo_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reo_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
