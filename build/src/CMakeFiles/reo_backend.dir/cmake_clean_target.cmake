file(REMOVE_RECURSE
  "libreo_backend.a"
)
