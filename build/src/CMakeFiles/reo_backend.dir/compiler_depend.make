# Empty compiler generated dependencies file for reo_backend.
# This may be replaced when dependencies are built.
