
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/backend/backend_store.cpp" "src/CMakeFiles/reo_backend.dir/backend/backend_store.cpp.o" "gcc" "src/CMakeFiles/reo_backend.dir/backend/backend_store.cpp.o.d"
  "/root/repo/src/backend/network_link.cpp" "src/CMakeFiles/reo_backend.dir/backend/network_link.cpp.o" "gcc" "src/CMakeFiles/reo_backend.dir/backend/network_link.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/reo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
