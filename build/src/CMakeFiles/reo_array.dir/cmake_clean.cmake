file(REMOVE_RECURSE
  "CMakeFiles/reo_array.dir/array/partial_update.cpp.o"
  "CMakeFiles/reo_array.dir/array/partial_update.cpp.o.d"
  "CMakeFiles/reo_array.dir/array/reconstruction.cpp.o"
  "CMakeFiles/reo_array.dir/array/reconstruction.cpp.o.d"
  "CMakeFiles/reo_array.dir/array/scrubber.cpp.o"
  "CMakeFiles/reo_array.dir/array/scrubber.cpp.o.d"
  "CMakeFiles/reo_array.dir/array/stripe_manager.cpp.o"
  "CMakeFiles/reo_array.dir/array/stripe_manager.cpp.o.d"
  "libreo_array.a"
  "libreo_array.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reo_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
