# Empty compiler generated dependencies file for reo_array.
# This may be replaced when dependencies are built.
