
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/array/partial_update.cpp" "src/CMakeFiles/reo_array.dir/array/partial_update.cpp.o" "gcc" "src/CMakeFiles/reo_array.dir/array/partial_update.cpp.o.d"
  "/root/repo/src/array/reconstruction.cpp" "src/CMakeFiles/reo_array.dir/array/reconstruction.cpp.o" "gcc" "src/CMakeFiles/reo_array.dir/array/reconstruction.cpp.o.d"
  "/root/repo/src/array/scrubber.cpp" "src/CMakeFiles/reo_array.dir/array/scrubber.cpp.o" "gcc" "src/CMakeFiles/reo_array.dir/array/scrubber.cpp.o.d"
  "/root/repo/src/array/stripe_manager.cpp" "src/CMakeFiles/reo_array.dir/array/stripe_manager.cpp.o" "gcc" "src/CMakeFiles/reo_array.dir/array/stripe_manager.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/reo_ec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/reo_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/reo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
