file(REMOVE_RECURSE
  "libreo_array.a"
)
