# Empty compiler generated dependencies file for reo_ec.
# This may be replaced when dependencies are built.
