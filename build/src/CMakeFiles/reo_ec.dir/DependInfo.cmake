
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ec/gf256.cpp" "src/CMakeFiles/reo_ec.dir/ec/gf256.cpp.o" "gcc" "src/CMakeFiles/reo_ec.dir/ec/gf256.cpp.o.d"
  "/root/repo/src/ec/matrix.cpp" "src/CMakeFiles/reo_ec.dir/ec/matrix.cpp.o" "gcc" "src/CMakeFiles/reo_ec.dir/ec/matrix.cpp.o.d"
  "/root/repo/src/ec/parity_update.cpp" "src/CMakeFiles/reo_ec.dir/ec/parity_update.cpp.o" "gcc" "src/CMakeFiles/reo_ec.dir/ec/parity_update.cpp.o.d"
  "/root/repo/src/ec/rs_code.cpp" "src/CMakeFiles/reo_ec.dir/ec/rs_code.cpp.o" "gcc" "src/CMakeFiles/reo_ec.dir/ec/rs_code.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/reo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
