file(REMOVE_RECURSE
  "libreo_ec.a"
)
