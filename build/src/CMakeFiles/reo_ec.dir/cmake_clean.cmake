file(REMOVE_RECURSE
  "CMakeFiles/reo_ec.dir/ec/gf256.cpp.o"
  "CMakeFiles/reo_ec.dir/ec/gf256.cpp.o.d"
  "CMakeFiles/reo_ec.dir/ec/matrix.cpp.o"
  "CMakeFiles/reo_ec.dir/ec/matrix.cpp.o.d"
  "CMakeFiles/reo_ec.dir/ec/parity_update.cpp.o"
  "CMakeFiles/reo_ec.dir/ec/parity_update.cpp.o.d"
  "CMakeFiles/reo_ec.dir/ec/rs_code.cpp.o"
  "CMakeFiles/reo_ec.dir/ec/rs_code.cpp.o.d"
  "libreo_ec.a"
  "libreo_ec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reo_ec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
