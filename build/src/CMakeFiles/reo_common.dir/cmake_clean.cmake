file(REMOVE_RECURSE
  "CMakeFiles/reo_common.dir/common/crc32c.cpp.o"
  "CMakeFiles/reo_common.dir/common/crc32c.cpp.o.d"
  "CMakeFiles/reo_common.dir/common/histogram.cpp.o"
  "CMakeFiles/reo_common.dir/common/histogram.cpp.o.d"
  "CMakeFiles/reo_common.dir/common/zipf.cpp.o"
  "CMakeFiles/reo_common.dir/common/zipf.cpp.o.d"
  "libreo_common.a"
  "libreo_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reo_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
