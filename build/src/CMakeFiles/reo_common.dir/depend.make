# Empty dependencies file for reo_common.
# This may be replaced when dependencies are built.
