file(REMOVE_RECURSE
  "libreo_common.a"
)
