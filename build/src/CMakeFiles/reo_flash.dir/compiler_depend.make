# Empty compiler generated dependencies file for reo_flash.
# This may be replaced when dependencies are built.
