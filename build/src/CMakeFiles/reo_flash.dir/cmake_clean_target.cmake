file(REMOVE_RECURSE
  "libreo_flash.a"
)
