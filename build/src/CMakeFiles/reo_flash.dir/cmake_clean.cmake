file(REMOVE_RECURSE
  "CMakeFiles/reo_flash.dir/flash/flash_array.cpp.o"
  "CMakeFiles/reo_flash.dir/flash/flash_array.cpp.o.d"
  "CMakeFiles/reo_flash.dir/flash/flash_device.cpp.o"
  "CMakeFiles/reo_flash.dir/flash/flash_device.cpp.o.d"
  "CMakeFiles/reo_flash.dir/flash/ftl.cpp.o"
  "CMakeFiles/reo_flash.dir/flash/ftl.cpp.o.d"
  "libreo_flash.a"
  "libreo_flash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reo_flash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
