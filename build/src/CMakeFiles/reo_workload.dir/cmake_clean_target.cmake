file(REMOVE_RECURSE
  "libreo_workload.a"
)
