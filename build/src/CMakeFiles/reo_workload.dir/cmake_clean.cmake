file(REMOVE_RECURSE
  "CMakeFiles/reo_workload.dir/workload/medisyn.cpp.o"
  "CMakeFiles/reo_workload.dir/workload/medisyn.cpp.o.d"
  "CMakeFiles/reo_workload.dir/workload/trace.cpp.o"
  "CMakeFiles/reo_workload.dir/workload/trace.cpp.o.d"
  "CMakeFiles/reo_workload.dir/workload/trace_io.cpp.o"
  "CMakeFiles/reo_workload.dir/workload/trace_io.cpp.o.d"
  "libreo_workload.a"
  "libreo_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reo_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
