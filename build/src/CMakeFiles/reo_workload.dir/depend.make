# Empty dependencies file for reo_workload.
# This may be replaced when dependencies are built.
