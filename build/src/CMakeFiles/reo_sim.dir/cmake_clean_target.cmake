file(REMOVE_RECURSE
  "libreo_sim.a"
)
