file(REMOVE_RECURSE
  "CMakeFiles/reo_sim.dir/sim/cache_simulator.cpp.o"
  "CMakeFiles/reo_sim.dir/sim/cache_simulator.cpp.o.d"
  "CMakeFiles/reo_sim.dir/sim/metrics.cpp.o"
  "CMakeFiles/reo_sim.dir/sim/metrics.cpp.o.d"
  "libreo_sim.a"
  "libreo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
