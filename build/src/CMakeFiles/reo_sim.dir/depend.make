# Empty dependencies file for reo_sim.
# This may be replaced when dependencies are built.
