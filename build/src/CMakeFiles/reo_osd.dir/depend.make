# Empty dependencies file for reo_osd.
# This may be replaced when dependencies are built.
