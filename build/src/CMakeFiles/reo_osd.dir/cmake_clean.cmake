file(REMOVE_RECURSE
  "CMakeFiles/reo_osd.dir/osd/attribute_store.cpp.o"
  "CMakeFiles/reo_osd.dir/osd/attribute_store.cpp.o.d"
  "CMakeFiles/reo_osd.dir/osd/control_protocol.cpp.o"
  "CMakeFiles/reo_osd.dir/osd/control_protocol.cpp.o.d"
  "CMakeFiles/reo_osd.dir/osd/exofs.cpp.o"
  "CMakeFiles/reo_osd.dir/osd/exofs.cpp.o.d"
  "CMakeFiles/reo_osd.dir/osd/object.cpp.o"
  "CMakeFiles/reo_osd.dir/osd/object.cpp.o.d"
  "CMakeFiles/reo_osd.dir/osd/object_store.cpp.o"
  "CMakeFiles/reo_osd.dir/osd/object_store.cpp.o.d"
  "CMakeFiles/reo_osd.dir/osd/osd_initiator.cpp.o"
  "CMakeFiles/reo_osd.dir/osd/osd_initiator.cpp.o.d"
  "CMakeFiles/reo_osd.dir/osd/osd_target.cpp.o"
  "CMakeFiles/reo_osd.dir/osd/osd_target.cpp.o.d"
  "CMakeFiles/reo_osd.dir/osd/transport.cpp.o"
  "CMakeFiles/reo_osd.dir/osd/transport.cpp.o.d"
  "libreo_osd.a"
  "libreo_osd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reo_osd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
