file(REMOVE_RECURSE
  "libreo_osd.a"
)
