
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/osd/attribute_store.cpp" "src/CMakeFiles/reo_osd.dir/osd/attribute_store.cpp.o" "gcc" "src/CMakeFiles/reo_osd.dir/osd/attribute_store.cpp.o.d"
  "/root/repo/src/osd/control_protocol.cpp" "src/CMakeFiles/reo_osd.dir/osd/control_protocol.cpp.o" "gcc" "src/CMakeFiles/reo_osd.dir/osd/control_protocol.cpp.o.d"
  "/root/repo/src/osd/exofs.cpp" "src/CMakeFiles/reo_osd.dir/osd/exofs.cpp.o" "gcc" "src/CMakeFiles/reo_osd.dir/osd/exofs.cpp.o.d"
  "/root/repo/src/osd/object.cpp" "src/CMakeFiles/reo_osd.dir/osd/object.cpp.o" "gcc" "src/CMakeFiles/reo_osd.dir/osd/object.cpp.o.d"
  "/root/repo/src/osd/object_store.cpp" "src/CMakeFiles/reo_osd.dir/osd/object_store.cpp.o" "gcc" "src/CMakeFiles/reo_osd.dir/osd/object_store.cpp.o.d"
  "/root/repo/src/osd/osd_initiator.cpp" "src/CMakeFiles/reo_osd.dir/osd/osd_initiator.cpp.o" "gcc" "src/CMakeFiles/reo_osd.dir/osd/osd_initiator.cpp.o.d"
  "/root/repo/src/osd/osd_target.cpp" "src/CMakeFiles/reo_osd.dir/osd/osd_target.cpp.o" "gcc" "src/CMakeFiles/reo_osd.dir/osd/osd_target.cpp.o.d"
  "/root/repo/src/osd/transport.cpp" "src/CMakeFiles/reo_osd.dir/osd/transport.cpp.o" "gcc" "src/CMakeFiles/reo_osd.dir/osd/transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/reo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
