file(REMOVE_RECURSE
  "CMakeFiles/space_efficiency.dir/space_efficiency.cpp.o"
  "CMakeFiles/space_efficiency.dir/space_efficiency.cpp.o.d"
  "space_efficiency"
  "space_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/space_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
