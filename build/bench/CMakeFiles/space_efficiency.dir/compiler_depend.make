# Empty compiler generated dependencies file for space_efficiency.
# This may be replaced when dependencies are built.
