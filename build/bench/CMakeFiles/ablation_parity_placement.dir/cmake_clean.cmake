file(REMOVE_RECURSE
  "CMakeFiles/ablation_parity_placement.dir/ablation_parity_placement.cpp.o"
  "CMakeFiles/ablation_parity_placement.dir/ablation_parity_placement.cpp.o.d"
  "ablation_parity_placement"
  "ablation_parity_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_parity_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
