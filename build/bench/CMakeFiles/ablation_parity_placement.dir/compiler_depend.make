# Empty compiler generated dependencies file for ablation_parity_placement.
# This may be replaced when dependencies are built.
