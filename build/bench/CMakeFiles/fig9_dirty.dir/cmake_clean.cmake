file(REMOVE_RECURSE
  "CMakeFiles/fig9_dirty.dir/fig9_dirty.cpp.o"
  "CMakeFiles/fig9_dirty.dir/fig9_dirty.cpp.o.d"
  "fig9_dirty"
  "fig9_dirty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_dirty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
