# Empty dependencies file for fig9_dirty.
# This may be replaced when dependencies are built.
