file(REMOVE_RECURSE
  "CMakeFiles/ablation_parity_update.dir/ablation_parity_update.cpp.o"
  "CMakeFiles/ablation_parity_update.dir/ablation_parity_update.cpp.o.d"
  "ablation_parity_update"
  "ablation_parity_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_parity_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
