# Empty compiler generated dependencies file for ablation_parity_update.
# This may be replaced when dependencies are built.
