# Empty dependencies file for fig6_medium.
# This may be replaced when dependencies are built.
