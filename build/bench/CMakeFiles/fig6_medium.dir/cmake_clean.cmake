file(REMOVE_RECURSE
  "CMakeFiles/fig6_medium.dir/fig6_medium.cpp.o"
  "CMakeFiles/fig6_medium.dir/fig6_medium.cpp.o.d"
  "fig6_medium"
  "fig6_medium.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_medium.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
