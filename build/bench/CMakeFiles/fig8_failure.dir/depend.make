# Empty dependencies file for fig8_failure.
# This may be replaced when dependencies are built.
