file(REMOVE_RECURSE
  "CMakeFiles/fig8_failure.dir/fig8_failure.cpp.o"
  "CMakeFiles/fig8_failure.dir/fig8_failure.cpp.o.d"
  "fig8_failure"
  "fig8_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
