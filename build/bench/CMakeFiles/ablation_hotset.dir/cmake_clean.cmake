file(REMOVE_RECURSE
  "CMakeFiles/ablation_hotset.dir/ablation_hotset.cpp.o"
  "CMakeFiles/ablation_hotset.dir/ablation_hotset.cpp.o.d"
  "ablation_hotset"
  "ablation_hotset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hotset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
