# Empty compiler generated dependencies file for ablation_hotset.
# This may be replaced when dependencies are built.
