file(REMOVE_RECURSE
  "CMakeFiles/fig7_strong.dir/fig7_strong.cpp.o"
  "CMakeFiles/fig7_strong.dir/fig7_strong.cpp.o.d"
  "fig7_strong"
  "fig7_strong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_strong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
