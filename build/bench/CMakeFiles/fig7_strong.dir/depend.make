# Empty dependencies file for fig7_strong.
# This may be replaced when dependencies are built.
