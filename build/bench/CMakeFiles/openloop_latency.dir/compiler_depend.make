# Empty compiler generated dependencies file for openloop_latency.
# This may be replaced when dependencies are built.
