file(REMOVE_RECURSE
  "CMakeFiles/openloop_latency.dir/openloop_latency.cpp.o"
  "CMakeFiles/openloop_latency.dir/openloop_latency.cpp.o.d"
  "openloop_latency"
  "openloop_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openloop_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
