file(REMOVE_RECURSE
  "CMakeFiles/fig5_weak.dir/fig5_weak.cpp.o"
  "CMakeFiles/fig5_weak.dir/fig5_weak.cpp.o.d"
  "fig5_weak"
  "fig5_weak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_weak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
