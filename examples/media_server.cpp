// Media-server scenario: the workload class the paper's evaluation models
// (MediSyn-style Zipfian access to media objects). Replays the paper's
// "medium" trace through a Reo-20% cache sized at 10 % of the dataset and
// prints the evaluation metrics plus a comparison against 1-parity.
//
//   $ ./build/examples/media_server
#include <cstdio>

#include "sim/cache_simulator.h"
#include "workload/medisyn.h"

using namespace reo;

int main() {
  auto trace = GenerateMediSyn(MediumLocalityConfig());
  std::printf("media_server: %zu requests over %zu objects (%.2f GB dataset)\n",
              trace.requests.size(), trace.catalog.count(),
              static_cast<double>(trace.catalog.TotalBytes()) / 1e9);

  for (auto [mode, reserve, label] :
       {std::tuple{ProtectionMode::kReo, 0.20, "Reo-20%"},
        std::tuple{ProtectionMode::kUniform1, 0.0, "1-parity"}}) {
    SimulationConfig cfg;
    cfg.name = label;
    cfg.policy = {.mode = mode, .reo_reserve_fraction = reserve};
    cfg.cache_fraction = 0.10;
    cfg.chunk_logical_bytes = 64 * 1024;
    cfg.scale_shift = 6;  // 1:64 data plane (DESIGN.md "Scaling")
    CacheSimulator sim(trace, cfg);
    auto report = sim.Run();
    std::printf("  %s\n", FormatReportRow(report).c_str());
  }
  return 0;
}
