// Write-back demonstration: dirty data protection (paper §VI.D).
//
// Writes flow into the cache as Class 1 (replicated across all devices),
// the background flusher pushes them to the backend, and after the flush
// they are reclassified clean — releasing the replication space. Four of
// five devices then fail; every dirty object must still be intact.
//
//   $ ./build/examples/writeback_flush
#include <cstdio>

#include "core/cache_manager.h"
#include "common/units.h"

using namespace reo;

int main() {
  FlashDeviceConfig dev;
  dev.capacity_bytes = 64ULL << 20;
  FlashArray array(5, dev);
  StripeManager stripes(array, {.chunk_logical_bytes = 64 * 1024, .scale_shift = 0});
  ReoDataPlane plane(stripes, RedundancyPolicy({.mode = ProtectionMode::kReo,
                                                .reo_reserve_fraction = 0.4}));
  OsdTarget target(plane);
  BackendStore backend(HddConfig{}, NetworkLinkConfig{});
  CacheManager cache(target, plane, backend, CacheManagerConfig{});
  cache.Initialize(0);

  const uint64_t kSize = 512 * 1024;
  SimClock clock;
  auto oid = [](int i) {
    return ObjectId{kFirstUserId, 0x20000u + static_cast<uint64_t>(i)};
  };
  for (int i = 0; i < 8; ++i) {
    backend.RegisterObject(oid(i), kSize, stripes.PhysicalSize(kSize));
  }

  std::printf("writing 8 objects (write-back)...\n");
  for (int i = 0; i < 8; ++i) {
    auto r = cache.Put(oid(i), kSize, clock.now());
    clock.Advance(r.latency);
  }
  std::printf("  after writes : redundancy in use %s (dirty data replicated)\n",
              HumanBytes(stripes.redundancy_bytes()).c_str());
  std::printf("  level of obj0: %s\n",
              std::string(to_string(*stripes.LevelOf(oid(0)))).c_str());

  // Let the flusher run (virtual time passes).
  clock.Advance(60 * kNsPerSec);
  cache.AdvanceBackground(clock.now());
  std::printf("  after flush  : %llu flushed, redundancy in use %s\n",
              static_cast<unsigned long long>(cache.stats().flushes),
              HumanBytes(stripes.redundancy_bytes()).c_str());
  std::printf("  level of obj0: %s (clean now)\n",
              std::string(to_string(*stripes.LevelOf(oid(0)))).c_str());

  // Write two more, then lose FOUR devices before they flush.
  auto r1 = cache.Put(oid(0), kSize, clock.now());
  clock.Advance(r1.latency);
  auto r2 = cache.Put(oid(1), kSize, clock.now());
  clock.Advance(r2.latency);
  for (DeviceIndex d = 0; d < 4; ++d) cache.OnDeviceFailure(d, clock.now());

  auto g = cache.Get(oid(0), kSize, clock.now());
  std::printf("  after 4 device failures: dirty obj0 %s, dirty lost = %llu\n",
              g.hit ? "still served from cache" : "LOST",
              static_cast<unsigned long long>(cache.stats().dirty_lost));
  std::printf("  (full replication keeps the only valid copy alive on the "
              "last surviving device)\n");
  return 0;
}
