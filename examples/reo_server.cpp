// reo_server: the Reo cache target as a real network service.
//
// Stands up the production stack — flash array, stripe manager,
// differentiated-redundancy data plane, OSD target — behind the epoll
// OsdServer, and serves the OSD wire protocol over TCP until SIGTERM /
// SIGINT, which triggers a graceful drain (stop accepting, finish
// in-flight requests, flush, exit). Examples:
//
//   reo_server --port 9555
//   reo_server --port 0 --port-file port.txt --stats-out stats.json
//   reo_server --policy 2-parity --devices 8 --capacity-mb 512
//   reo_server --port 9555 --data-dir /var/lib/reo     # durable, restartable
#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "admit/admission_tier.h"
#include "common/file_util.h"
#include "common/units.h"
#include "core/data_plane.h"
#include "core/policy.h"
#include "fault/failslow.h"
#include "fault/fault_injector.h"
#include "fault/fault_spec.h"
#include "flash/flash_array.h"
#include "osd/osd_target.h"
#include "persist/persistence.h"
#include "persist/restore.h"
#include "server/osd_server.h"
#include "telemetry/metric_registry.h"
#include "telemetry/time_series.h"
#include "trace/event_log.h"
#include "trace/tracer.h"

using namespace reo;

namespace {

OsdServer* g_server = nullptr;

void HandleShutdownSignal(int) {
  // RequestDrain is async-signal-safe: a flag store plus an eventfd write.
  if (g_server != nullptr) g_server->RequestDrain();
}

void Usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --bind ADDR          listen address (default 127.0.0.1)\n"
      "  --port N             listen port; 0 picks an ephemeral one (default 0)\n"
      "  --port-file PATH     write the bound port to PATH (for scripts/CI)\n"
      "  --policy reo|0-parity|1-parity|2-parity|full-repl   (default reo)\n"
      "  --reserve F          Reo redundancy reserve fraction (default 0.2)\n"
      "  --devices N          flash devices (default 5)\n"
      "  --capacity-mb N      cache capacity budget in MiB (default 256)\n"
      "  --chunk-kb N         chunk size in KiB (default 64)\n"
      "  --scale-shift N      physical payload scale (default 0: full bytes)\n"
      "  --max-connections N  concurrent connection cap (default 1024)\n"
      "  --idle-timeout-ms N  close idle connections (default 60000)\n"
      "  --stats-out PATH     write the telemetry snapshot JSON on exit\n"
      "  --events-out PATH    write the event log text on exit\n"
      "  --telemetry on|off   metric registration + time series + in-band\n"
      "                       STATS/SERIES admin data (default on; off\n"
      "                       leaves only HEALTH/EVENTS answering)\n"
      "  --trace-sample N     trace 1 in N requests into the per-stage\n"
      "                       latency histograms; 0 disables (default 64)\n"
      "  --series-window-ms N time-series window width (default 1000)\n"
      "  --series-windows N   closed windows retained (default 300)\n"
      "  --data-dir PATH      durable cache state: data log + journal +\n"
      "                       checkpoints under PATH; restart recovers in\n"
      "                       class order 0->1->2->3 (default: in-memory)\n"
      "  --fsync-batch N      group-commit fsync batch, records (default 32)\n"
      "  --checkpoint-interval N  journal records between automatic\n"
      "                       checkpoints (default 4096)\n"
      "  --fault-spec PATH    JSON fault-injection spec (chaos testing; see\n"
      "                       src/fault/fault_spec.h for the format)\n"
      "  --dram-mb N          DRAM admission tier budget in MiB; clean\n"
      "                       writes stage in DRAM and only graduate to\n"
      "                       flash per the admission policy (default 0:\n"
      "                       tier off, every write goes straight to flash)\n"
      "  --admission P        all|flashiness|credit - policy deciding which\n"
      "                       DRAM evictions earn a flash write (default all)\n"
      "  --flash-write-budget N   write-credit budget for --admission\n"
      "                       credit, MiB of flash writes per second\n"
      "                       (default 64)\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  OsdServerConfig server_cfg;
  PolicyConfig policy{.mode = ProtectionMode::kReo, .reo_reserve_fraction = 0.2};
  size_t num_devices = 5;
  uint64_t capacity_bytes = 256ull << 20;
  uint64_t chunk_bytes = 64 * 1024;
  uint32_t scale_shift = 0;
  std::string port_file, stats_out, events_out;
  PersistenceConfig persist_cfg;
  FaultSpec fault_spec;
  bool telemetry_on = true;
  uint64_t trace_sample = 64;
  uint64_t series_window_ms = 1000;
  size_t series_windows = 300;
  AdmissionConfig admit_cfg;

  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--bind")) {
      server_cfg.bind_address = next();
    } else if (!std::strcmp(argv[i], "--port")) {
      server_cfg.port = static_cast<uint16_t>(std::strtoul(next(), nullptr, 10));
    } else if (!std::strcmp(argv[i], "--port-file")) {
      port_file = next();
    } else if (!std::strcmp(argv[i], "--policy")) {
      std::string p = next();
      if (p == "reo") policy.mode = ProtectionMode::kReo;
      else if (p == "0-parity") policy.mode = ProtectionMode::kUniform0;
      else if (p == "1-parity") policy.mode = ProtectionMode::kUniform1;
      else if (p == "2-parity") policy.mode = ProtectionMode::kUniform2;
      else if (p == "full-repl") policy.mode = ProtectionMode::kFullReplication;
      else {
        std::fprintf(stderr, "unknown policy %s\n", p.c_str());
        return 2;
      }
    } else if (!std::strcmp(argv[i], "--reserve")) {
      policy.reo_reserve_fraction = std::atof(next());
    } else if (!std::strcmp(argv[i], "--devices")) {
      num_devices = std::strtoull(next(), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--capacity-mb")) {
      capacity_bytes = std::strtoull(next(), nullptr, 10) << 20;
    } else if (!std::strcmp(argv[i], "--chunk-kb")) {
      chunk_bytes = std::strtoull(next(), nullptr, 10) * 1024;
    } else if (!std::strcmp(argv[i], "--scale-shift")) {
      scale_shift = static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (!std::strcmp(argv[i], "--max-connections")) {
      server_cfg.max_connections = std::strtoull(next(), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--idle-timeout-ms")) {
      server_cfg.idle_timeout_ms = std::strtoull(next(), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--stats-out")) {
      stats_out = next();
    } else if (!std::strcmp(argv[i], "--events-out")) {
      events_out = next();
    } else if (!std::strcmp(argv[i], "--telemetry")) {
      std::string v = next();
      if (v == "on") telemetry_on = true;
      else if (v == "off") telemetry_on = false;
      else {
        std::fprintf(stderr, "--telemetry wants on|off, got %s\n", v.c_str());
        return 2;
      }
    } else if (!std::strcmp(argv[i], "--trace-sample")) {
      trace_sample = std::strtoull(next(), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--series-window-ms")) {
      series_window_ms = std::strtoull(next(), nullptr, 10);
      if (series_window_ms == 0) series_window_ms = 1;
    } else if (!std::strcmp(argv[i], "--series-windows")) {
      series_windows = std::strtoull(next(), nullptr, 10);
      if (series_windows == 0) series_windows = 1;
    } else if (!std::strcmp(argv[i], "--data-dir")) {
      persist_cfg.data_dir = next();
    } else if (!std::strcmp(argv[i], "--fsync-batch")) {
      persist_cfg.fsync_batch_records = std::strtoull(next(), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--checkpoint-interval")) {
      persist_cfg.checkpoint_interval_records =
          std::strtoull(next(), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--dram-mb")) {
      admit_cfg.dram_bytes = std::strtoull(next(), nullptr, 10) * kMiB;
    } else if (!std::strcmp(argv[i], "--admission")) {
      const char* p = next();
      if (!ParseAdmissionPolicy(p, &admit_cfg.policy)) {
        std::fprintf(stderr, "unknown admission policy %s\n", p);
        return 2;
      }
    } else if (!std::strcmp(argv[i], "--flash-write-budget")) {
      admit_cfg.flash_write_budget_bps =
          std::strtoull(next(), nullptr, 10) * kMiB;
    } else if (!std::strcmp(argv[i], "--fault-spec")) {
      auto spec = LoadFaultSpecFile(next());
      if (!spec.ok()) {
        std::fprintf(stderr, "bad fault spec: %s\n",
                     spec.status().to_string().c_str());
        return 2;
      }
      fault_spec = std::move(*spec);
    } else if (!std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h")) {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      Usage(argv[0]);
      return 2;
    }
  }

  // The production stack, same wiring as the simulator minus the replay
  // harness: every byte a client writes lands in the striped flash array
  // under the selected protection policy.
  FlashDeviceConfig dev;
  dev.capacity_bytes = std::max<uint64_t>(capacity_bytes, 4 * chunk_bytes);
  FlashArray array(num_devices, dev);
  StripeManagerConfig smc;
  smc.chunk_logical_bytes = chunk_bytes;
  smc.scale_shift = scale_shift;
  smc.capacity_limit_bytes = capacity_bytes;
  StripeManager stripes(array, smc);
  ReoDataPlane plane(stripes, RedundancyPolicy(policy));
  // DRAM admission tier: clean writes stage in DRAM and only graduate to
  // flash when the admission policy says the eviction earned a flash write.
  // Disabled (--dram-mb 0) the stack is byte-identical to the pre-tier one.
  AdmissionTier admit(admit_cfg);
  if (admit.enabled()) plane.AttachAdmission(admit);
  OsdTarget target(plane);

  MetricRegistry telemetry;
  EventLog events;
  if (telemetry_on) {
    array.AttachTelemetry(telemetry);
    plane.AttachTelemetry(telemetry);
    target.AttachTelemetry(telemetry);
    if (admit.enabled()) admit.AttachTelemetry(telemetry);
  }
  plane.AttachEvents(events);
  if (admit.enabled()) admit.AttachEvents(events);

  // Per-stage latency attribution: sampled request traces feed
  // stage.<component>.span_us histograms. --trace-sample 0 turns it off.
  Tracer tracer(TracerConfig{.sample_every = trace_sample});
  bool tracing_on = telemetry_on && trace_sample > 0;
  if (tracing_on) {
    tracer.AttachStageMetrics(telemetry);
    array.AttachTracing(tracer);
    stripes.AttachTracing(tracer);
    plane.AttachTracing(tracer);
    target.AttachTracing(tracer);
  }

  // Chaos testing: deterministic fault injection into the device layer.
  // The data plane's retry + in-place CRC repair is what keeps injected
  // latent/transient faults invisible to wire clients.
  std::unique_ptr<FaultInjector> injector;
  std::unique_ptr<FailSlowDetector> failslow;
  if (!fault_spec.empty()) {
    injector = std::make_unique<FaultInjector>(fault_spec);
    failslow = std::make_unique<FailSlowDetector>(
        static_cast<uint32_t>(num_devices), FailSlowConfig{});
    array.AttachFaults(injector.get(), failslow.get());
    injector->AttachTelemetry(telemetry);
    injector->AttachEvents(events);
    failslow->AttachTelemetry(telemetry);
    failslow->AttachEvents(events);
    plane.ConfigureRetry(plane.retry_policy(), fault_spec.seed);
  }

  // Durable state: open (running crash recovery), replay any recovered
  // objects back through the stack in class order, then checkpoint so the
  // next restart starts from a compact image.
  std::unique_ptr<PersistenceManager> persist;
  if (persist_cfg.enabled()) {
    auto opened = PersistenceManager::Open(persist_cfg);
    if (!opened.ok()) {
      if (opened.status().code() == ErrorCode::kCorrupted) {
        // Fail-stop on corrupt durable state: refuse to serve from a state
        // image we cannot trust, and name the offending file so the
        // operator can remove or restore it. Distinct exit code for CI.
        std::fprintf(stderr, "reo_server: corrupt durable state: %s\n",
                     opened.status().to_string().c_str());
        return 3;
      }
      std::fprintf(stderr, "persistence open failed: %s\n",
                   opened.status().to_string().c_str());
      return 1;
    }
    persist = std::move(*opened);
    if (injector) persist->AttachFaults(injector.get());
    persist->AttachTelemetry(telemetry);
    persist->AttachEvents(events);
    plane.AttachPersistence(persist.get());
    if (persist->live_objects() > 0) {
      RestoreReport rr =
          RestoreToTarget(*persist, target, capacity_bytes, 0, &events);
      std::printf(
          "restored %llu objects (class0=%llu class1=%llu class2=%llu"
          " class3=%llu, dirty_lost=%llu, verify_failures=%llu) in %llu us\n",
          static_cast<unsigned long long>(rr.total_restored()),
          static_cast<unsigned long long>(rr.restored_per_class[0]),
          static_cast<unsigned long long>(rr.restored_per_class[1]),
          static_cast<unsigned long long>(rr.restored_per_class[2]),
          static_cast<unsigned long long>(rr.restored_per_class[3]),
          static_cast<unsigned long long>(rr.dirty_lost),
          static_cast<unsigned long long>(rr.payload_verify_failures),
          static_cast<unsigned long long>(rr.duration_us));
    }
    Status cp = persist->Checkpoint(0);
    if (!cp.ok()) {
      std::fprintf(stderr, "startup checkpoint failed: %s\n",
                   cp.to_string().c_str());
      return 1;
    }
    // Clean shutdown: checkpoint after the last in-flight request is
    // answered, so restart replays a checkpoint instead of a long journal.
    server_cfg.on_drained = [&persist, &events]() {
      Status st = persist->Checkpoint(0);
      if (!st.ok()) {
        Emit(&events, 0, EventSeverity::kError, "persist.checkpoint",
             "shutdown checkpoint failed", {{"error", st.to_string()}});
      }
    };
  }

  OsdServer server(target, server_cfg);
  server.AttachEvents(events);
  // Live observability: per-window time series over the serving metrics,
  // plus the in-band STATS/SERIES admin plane. HEALTH and EVENTS answer
  // even with --telemetry off (dispatch does not depend on AttachAdmin).
  TimeSeriesRing series(TimeSeriesConfig{
      .window_ns = series_window_ms * 1'000'000, .capacity = series_windows});
  if (telemetry_on) {
    server.AttachTelemetry(telemetry);
    TrackServingDefaults(telemetry, series, num_devices);
    server.AttachAdmin(&telemetry, &series);
  }
  if (tracing_on) server.AttachTracing(tracer);
  Status st = server.Listen();
  if (!st.ok()) {
    std::fprintf(stderr, "listen failed: %s\n", st.to_string().c_str());
    return 1;
  }
  if (!port_file.empty()) {
    Status wf = WriteFileAtomic(port_file, std::to_string(server.port()) + "\n");
    if (!wf.ok()) {
      std::fprintf(stderr, "port file: %s\n", wf.to_string().c_str());
      return 1;
    }
  }
  std::printf("reo_server listening on %s:%u (policy %s, %zu devices,"
              " %llu MiB budget)\n",
              server_cfg.bind_address.c_str(), server.port(),
              std::string(to_string(policy.mode)).c_str(), num_devices,
              static_cast<unsigned long long>(capacity_bytes >> 20));
  if (admit.enabled()) {
    std::printf("dram admission tier: %llu MiB, policy %s\n",
                static_cast<unsigned long long>(admit_cfg.dram_bytes >> 20),
                std::string(to_string(admit_cfg.policy)).c_str());
  }
  std::fflush(stdout);

  g_server = &server;
  struct sigaction sa{};
  sa.sa_handler = HandleShutdownSignal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
  signal(SIGPIPE, SIG_IGN);

  server.Run();
  g_server = nullptr;

  const OsdServerStats& s = server.stats();
  std::printf("drained: %llu connections served, %llu requests,"
              " %llu bytes in / %llu out\n",
              static_cast<unsigned long long>(s.accepted),
              static_cast<unsigned long long>(s.requests),
              static_cast<unsigned long long>(s.bytes_in),
              static_cast<unsigned long long>(s.bytes_out));
  std::printf("wire errors: %llu frame, %llu crc, %llu decode\n",
              static_cast<unsigned long long>(s.frame_errors),
              static_cast<unsigned long long>(s.crc_errors),
              static_cast<unsigned long long>(s.decode_errors));
  if (!stats_out.empty()) {
    Status wf = WriteFileAtomic(stats_out, telemetry.Snapshot().ToJson());
    if (!wf.ok()) {
      std::fprintf(stderr, "stats write failed: %s\n", wf.to_string().c_str());
      return 1;
    }
    std::printf("telemetry snapshot -> %s\n", stats_out.c_str());
  }
  if (!events_out.empty()) {
    Status wf = WriteFileAtomic(events_out, events.ToText());
    if (!wf.ok()) {
      std::fprintf(stderr, "events write failed: %s\n", wf.to_string().c_str());
      return 1;
    }
    std::printf("event log -> %s\n", events_out.c_str());
  }
  return 0;
}
