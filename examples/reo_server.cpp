// reo_server: the Reo cache target as a real network service.
//
// Stands up the production stack — flash array, stripe manager,
// differentiated-redundancy data plane, OSD target — behind the epoll
// OsdServer, and serves the OSD wire protocol over TCP until SIGTERM /
// SIGINT, which triggers a graceful drain (stop accepting, finish
// in-flight requests, flush, exit). Examples:
//
//   reo_server --port 9555
//   reo_server --port 0 --port-file port.txt --stats-out stats.json
//   reo_server --policy 2-parity --devices 8 --capacity-mb 512
//   reo_server --port 9555 --data-dir /var/lib/reo     # durable, restartable
//   reo_server --port 9555 --shards 4                  # multi-threaded
//
// With --shards N > 1 the object space is hash-partitioned across N
// independent serving stacks, each on its own event-loop thread with its
// own flash array, cache state, and (under --data-dir) its own journal
// in data-dir/shardK. One listening port serves all of them; commands
// landing on the "wrong" shard's connection are forwarded between loops
// (see src/shard/sharded_server.h). --shards 1 (the default) uses the
// original single-threaded OsdServer path, byte-for-byte unchanged.
#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "admit/admission_tier.h"
#include "common/file_util.h"
#include "common/units.h"
#include "core/data_plane.h"
#include "core/policy.h"
#include "fault/failslow.h"
#include "fault/fault_injector.h"
#include "fault/fault_spec.h"
#include "flash/flash_array.h"
#include "osd/osd_target.h"
#include "persist/persistence.h"
#include "persist/restore.h"
#include "server/osd_server.h"
#include "shard/sharded_server.h"
#include "telemetry/metric_registry.h"
#include "telemetry/time_series.h"
#include "trace/event_log.h"
#include "trace/tracer.h"

using namespace reo;

namespace {

OsdServer* g_server = nullptr;
ShardedServer* g_sharded = nullptr;

void HandleShutdownSignal(int) {
  // RequestDrain is async-signal-safe: a flag store plus an eventfd write.
  if (g_server != nullptr) g_server->RequestDrain();
  if (g_sharded != nullptr) g_sharded->RequestDrain();
}

void Usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --bind ADDR          listen address (default 127.0.0.1)\n"
      "  --port N             listen port; 0 picks an ephemeral one (default 0)\n"
      "  --port-file PATH     write the bound port to PATH (for scripts/CI)\n"
      "  --node-id N          cluster node identity: attaches the cluster\n"
      "                       directory (owner hints, ADMIN OWNERS, node_id\n"
      "                       in HEALTH) for multi-node deployments\n"
      "                       (default: single-node, no directory)\n"
      "  --shards N           serving shards (threads); the object space is\n"
      "                       hash-partitioned across N independent stacks\n"
      "                       (default 1: the single-threaded server).\n"
      "                       Capacity and DRAM budgets are split evenly;\n"
      "                       --devices is per shard; per-stage tracing is\n"
      "                       only available with 1 shard\n"
      "  --policy reo|0-parity|1-parity|2-parity|full-repl   (default reo)\n"
      "  --reserve F          Reo redundancy reserve fraction (default 0.2)\n"
      "  --devices N          flash devices (default 5)\n"
      "  --capacity-mb N      cache capacity budget in MiB (default 256)\n"
      "  --chunk-kb N         chunk size in KiB (default 64)\n"
      "  --scale-shift N      physical payload scale (default 0: full bytes)\n"
      "  --max-connections N  concurrent connection cap (default 1024)\n"
      "  --idle-timeout-ms N  close idle connections (default 60000)\n"
      "  --stats-out PATH     write the telemetry snapshot JSON on exit\n"
      "                       (multi-shard: the merged cross-shard snapshot)\n"
      "  --events-out PATH    write the event log text on exit\n"
      "  --telemetry on|off   metric registration + time series + in-band\n"
      "                       STATS/SERIES admin data (default on; off\n"
      "                       leaves only HEALTH/EVENTS answering)\n"
      "  --trace-sample N     trace 1 in N requests into the per-stage\n"
      "                       latency histograms; 0 disables (default 64)\n"
      "  --series-window-ms N time-series window width (default 1000)\n"
      "  --series-windows N   closed windows retained (default 300)\n"
      "  --data-dir PATH      durable cache state: data log + journal +\n"
      "                       checkpoints under PATH; restart recovers in\n"
      "                       class order 0->1->2->3 (default: in-memory).\n"
      "                       With --shards N > 1, shard K journals under\n"
      "                       PATH/shardK\n"
      "  --fsync-batch N      group-commit fsync batch, records (default 32)\n"
      "  --checkpoint-interval N  journal records between automatic\n"
      "                       checkpoints (default 4096)\n"
      "  --fault-spec PATH    JSON fault-injection spec (chaos testing; see\n"
      "                       src/fault/fault_spec.h for the format)\n"
      "  --dram-mb N          DRAM admission tier budget in MiB; clean\n"
      "                       writes stage in DRAM and only graduate to\n"
      "                       flash per the admission policy (default 0:\n"
      "                       tier off, every write goes straight to flash)\n"
      "  --admission P        all|flashiness|credit - policy deciding which\n"
      "                       DRAM evictions earn a flash write (default all)\n"
      "  --flash-write-budget N   write-credit budget for --admission\n"
      "                       credit, MiB of flash writes per second\n"
      "                       (default 64)\n",
      argv0);
}

/// One shard's full serving stack. With --shards 1 there is exactly one
/// of these and it sits behind the classic OsdServer.
struct ShardStack {
  std::unique_ptr<FlashArray> array;
  std::unique_ptr<StripeManager> stripes;
  std::unique_ptr<ReoDataPlane> plane;
  std::unique_ptr<AdmissionTier> admit;
  std::unique_ptr<OsdTarget> target;
  std::unique_ptr<MetricRegistry> telemetry;
  std::unique_ptr<FaultInjector> injector;
  std::unique_ptr<FailSlowDetector> failslow;
  std::unique_ptr<PersistenceManager> persist;
  std::unique_ptr<ClusterDirectory> cluster;  ///< --node-id only
};

}  // namespace

int main(int argc, char** argv) {
  OsdServerConfig server_cfg;
  PolicyConfig policy{.mode = ProtectionMode::kReo, .reo_reserve_fraction = 0.2};
  size_t num_shards = 1;
  size_t num_devices = 5;
  uint64_t capacity_bytes = 256ull << 20;
  uint64_t chunk_bytes = 64 * 1024;
  uint32_t scale_shift = 0;
  std::string port_file, stats_out, events_out;
  PersistenceConfig persist_cfg;
  FaultSpec fault_spec;
  bool telemetry_on = true;
  bool cluster_on = false;
  uint32_t node_id = 0;
  uint64_t trace_sample = 64;
  uint64_t series_window_ms = 1000;
  size_t series_windows = 300;
  AdmissionConfig admit_cfg;

  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--bind")) {
      server_cfg.bind_address = next();
    } else if (!std::strcmp(argv[i], "--port")) {
      server_cfg.port = static_cast<uint16_t>(std::strtoul(next(), nullptr, 10));
    } else if (!std::strcmp(argv[i], "--port-file")) {
      port_file = next();
    } else if (!std::strcmp(argv[i], "--node-id")) {
      node_id = static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
      cluster_on = true;
    } else if (!std::strcmp(argv[i], "--shards")) {
      num_shards = std::strtoull(next(), nullptr, 10);
      if (num_shards == 0) num_shards = 1;
    } else if (!std::strcmp(argv[i], "--policy")) {
      std::string p = next();
      if (p == "reo") policy.mode = ProtectionMode::kReo;
      else if (p == "0-parity") policy.mode = ProtectionMode::kUniform0;
      else if (p == "1-parity") policy.mode = ProtectionMode::kUniform1;
      else if (p == "2-parity") policy.mode = ProtectionMode::kUniform2;
      else if (p == "full-repl") policy.mode = ProtectionMode::kFullReplication;
      else {
        std::fprintf(stderr, "unknown policy %s\n", p.c_str());
        return 2;
      }
    } else if (!std::strcmp(argv[i], "--reserve")) {
      policy.reo_reserve_fraction = std::atof(next());
    } else if (!std::strcmp(argv[i], "--devices")) {
      num_devices = std::strtoull(next(), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--capacity-mb")) {
      capacity_bytes = std::strtoull(next(), nullptr, 10) << 20;
    } else if (!std::strcmp(argv[i], "--chunk-kb")) {
      chunk_bytes = std::strtoull(next(), nullptr, 10) * 1024;
    } else if (!std::strcmp(argv[i], "--scale-shift")) {
      scale_shift = static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (!std::strcmp(argv[i], "--max-connections")) {
      server_cfg.max_connections = std::strtoull(next(), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--idle-timeout-ms")) {
      server_cfg.idle_timeout_ms = std::strtoull(next(), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--stats-out")) {
      stats_out = next();
    } else if (!std::strcmp(argv[i], "--events-out")) {
      events_out = next();
    } else if (!std::strcmp(argv[i], "--telemetry")) {
      std::string v = next();
      if (v == "on") telemetry_on = true;
      else if (v == "off") telemetry_on = false;
      else {
        std::fprintf(stderr, "--telemetry wants on|off, got %s\n", v.c_str());
        return 2;
      }
    } else if (!std::strcmp(argv[i], "--trace-sample")) {
      trace_sample = std::strtoull(next(), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--series-window-ms")) {
      series_window_ms = std::strtoull(next(), nullptr, 10);
      if (series_window_ms == 0) series_window_ms = 1;
    } else if (!std::strcmp(argv[i], "--series-windows")) {
      series_windows = std::strtoull(next(), nullptr, 10);
      if (series_windows == 0) series_windows = 1;
    } else if (!std::strcmp(argv[i], "--data-dir")) {
      persist_cfg.data_dir = next();
    } else if (!std::strcmp(argv[i], "--fsync-batch")) {
      persist_cfg.fsync_batch_records = std::strtoull(next(), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--checkpoint-interval")) {
      persist_cfg.checkpoint_interval_records =
          std::strtoull(next(), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--dram-mb")) {
      admit_cfg.dram_bytes = std::strtoull(next(), nullptr, 10) * kMiB;
    } else if (!std::strcmp(argv[i], "--admission")) {
      const char* p = next();
      if (!ParseAdmissionPolicy(p, &admit_cfg.policy)) {
        std::fprintf(stderr, "unknown admission policy %s\n", p);
        return 2;
      }
    } else if (!std::strcmp(argv[i], "--flash-write-budget")) {
      admit_cfg.flash_write_budget_bps =
          std::strtoull(next(), nullptr, 10) * kMiB;
    } else if (!std::strcmp(argv[i], "--fault-spec")) {
      auto spec = LoadFaultSpecFile(next());
      if (!spec.ok()) {
        std::fprintf(stderr, "bad fault spec: %s\n",
                     spec.status().to_string().c_str());
        return 2;
      }
      fault_spec = std::move(*spec);
    } else if (!std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h")) {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      Usage(argv[0]);
      return 2;
    }
  }

  // Per-stage tracing assumes a single-threaded stack; with shards it
  // would need one tracer per shard and per-shard span merge. Off for now.
  bool tracing_on = telemetry_on && trace_sample > 0 && num_shards == 1;

  EventLog events;  // shared: thread-safe, global ticket order across shards
  TimeSeriesRing series(TimeSeriesConfig{
      .window_ns = series_window_ms * 1'000'000, .capacity = series_windows});
  Tracer tracer(TracerConfig{.sample_every = trace_sample});

  // Budgets split evenly across shards (each shard is an independent
  // stack over its hash slice of the object space).
  uint64_t shard_capacity = capacity_bytes / num_shards;
  AdmissionConfig shard_admit_cfg = admit_cfg;
  shard_admit_cfg.dram_bytes = admit_cfg.dram_bytes / num_shards;

  // The production stack(s), same wiring as the simulator minus the
  // replay harness: every byte a client writes lands in a striped flash
  // array under the selected protection policy.
  std::vector<ShardStack> stacks(num_shards);
  for (size_t k = 0; k < num_shards; ++k) {
    ShardStack& s = stacks[k];
    FlashDeviceConfig dev;
    dev.capacity_bytes = std::max<uint64_t>(shard_capacity, 4 * chunk_bytes);
    s.array = std::make_unique<FlashArray>(num_devices, dev);
    StripeManagerConfig smc;
    smc.chunk_logical_bytes = chunk_bytes;
    smc.scale_shift = scale_shift;
    smc.capacity_limit_bytes = shard_capacity;
    s.stripes = std::make_unique<StripeManager>(*s.array, smc);
    s.plane = std::make_unique<ReoDataPlane>(*s.stripes,
                                             RedundancyPolicy(policy));
    // DRAM admission tier: clean writes stage in DRAM and only graduate
    // to flash when the admission policy says the eviction earned a
    // flash write. Disabled (--dram-mb 0) the stack is byte-identical to
    // the pre-tier one.
    s.admit = std::make_unique<AdmissionTier>(shard_admit_cfg);
    if (s.admit->enabled()) s.plane->AttachAdmission(*s.admit);
    s.target = std::make_unique<OsdTarget>(*s.plane);

    s.telemetry = std::make_unique<MetricRegistry>();
    if (telemetry_on) {
      s.array->AttachTelemetry(*s.telemetry);
      s.plane->AttachTelemetry(*s.telemetry);
      s.target->AttachTelemetry(*s.telemetry);
      if (s.admit->enabled()) s.admit->AttachTelemetry(*s.telemetry);
    }
    s.plane->AttachEvents(events);
    if (s.admit->enabled()) s.admit->AttachEvents(events);

    // Cluster mode: the per-shard directory holds this node's slice of
    // the cluster's owner hints and recognizes refetch arrivals.
    if (cluster_on) {
      s.cluster = std::make_unique<ClusterDirectory>(node_id);
      if (telemetry_on) s.cluster->AttachTelemetry(*s.telemetry);
      s.cluster->AttachEvents(events);
      s.target->AttachCluster(*s.cluster);
    }

    // Per-stage latency attribution: sampled request traces feed
    // stage.<component>.span_us histograms. --trace-sample 0 turns it off.
    if (tracing_on) {
      tracer.AttachStageMetrics(*s.telemetry);
      s.array->AttachTracing(tracer);
      s.stripes->AttachTracing(tracer);
      s.plane->AttachTracing(tracer);
      s.target->AttachTracing(tracer);
    }

    // Chaos testing: deterministic fault injection into the device layer.
    // The data plane's retry + in-place CRC repair is what keeps injected
    // latent/transient faults invisible to wire clients. Each shard's
    // injector reseeds so shards do not fail in lockstep.
    if (!fault_spec.empty()) {
      FaultSpec shard_spec = fault_spec;
      shard_spec.seed += k;
      s.injector = std::make_unique<FaultInjector>(shard_spec);
      s.failslow = std::make_unique<FailSlowDetector>(
          static_cast<uint32_t>(num_devices), FailSlowConfig{});
      s.array->AttachFaults(s.injector.get(), s.failslow.get());
      s.injector->AttachTelemetry(*s.telemetry);
      s.injector->AttachEvents(events);
      s.failslow->AttachTelemetry(*s.telemetry);
      s.failslow->AttachEvents(events);
      s.plane->ConfigureRetry(s.plane->retry_policy(), shard_spec.seed);
    }

    // Durable state: open (running crash recovery), replay any recovered
    // objects back through the stack in class order, then checkpoint so
    // the next restart starts from a compact image. Each shard owns an
    // independent journal directory; restores run shard-by-shard, class-
    // ordered within each shard.
    if (persist_cfg.enabled()) {
      PersistenceConfig shard_persist_cfg = persist_cfg;
      if (num_shards > 1) {
        shard_persist_cfg.data_dir =
            persist_cfg.data_dir + "/shard" + std::to_string(k);
      }
      auto opened = PersistenceManager::Open(shard_persist_cfg);
      if (!opened.ok()) {
        if (opened.status().code() == ErrorCode::kCorrupted) {
          // Fail-stop on corrupt durable state: refuse to serve from a
          // state image we cannot trust, and name the offending file so
          // the operator can remove or restore it. Distinct exit code
          // for CI.
          std::fprintf(stderr, "reo_server: corrupt durable state: %s\n",
                       opened.status().to_string().c_str());
          return 3;
        }
        std::fprintf(stderr, "persistence open failed: %s\n",
                     opened.status().to_string().c_str());
        return 1;
      }
      s.persist = std::move(*opened);
      if (s.injector) s.persist->AttachFaults(s.injector.get());
      s.persist->AttachTelemetry(*s.telemetry);
      s.persist->AttachEvents(events);
      s.plane->AttachPersistence(s.persist.get());
      if (s.persist->live_objects() > 0) {
        RestoreReport rr =
            RestoreToTarget(*s.persist, *s.target, shard_capacity, 0, &events);
        std::printf(
            "shard %zu: restored %llu objects (class0=%llu class1=%llu"
            " class2=%llu class3=%llu, dirty_lost=%llu, verify_failures=%llu)"
            " in %llu us\n",
            k, static_cast<unsigned long long>(rr.total_restored()),
            static_cast<unsigned long long>(rr.restored_per_class[0]),
            static_cast<unsigned long long>(rr.restored_per_class[1]),
            static_cast<unsigned long long>(rr.restored_per_class[2]),
            static_cast<unsigned long long>(rr.restored_per_class[3]),
            static_cast<unsigned long long>(rr.dirty_lost),
            static_cast<unsigned long long>(rr.payload_verify_failures),
            static_cast<unsigned long long>(rr.duration_us));
      }
      Status cp = s.persist->Checkpoint(0);
      if (!cp.ok()) {
        std::fprintf(stderr, "startup checkpoint failed: %s\n",
                     cp.to_string().c_str());
        return 1;
      }
    }
  }

  struct sigaction sa{};
  sa.sa_handler = HandleShutdownSignal;

  if (num_shards == 1) {
    // --- Single-threaded path: the classic OsdServer, unchanged. ------
    ShardStack& s = stacks[0];
    if (s.persist) {
      // Clean shutdown: checkpoint after the last in-flight request is
      // answered, so restart replays a checkpoint instead of a long
      // journal.
      PersistenceManager* persist = s.persist.get();
      server_cfg.on_drained = [persist, &events]() {
        Status st = persist->Checkpoint(0);
        if (!st.ok()) {
          Emit(&events, 0, EventSeverity::kError, "persist.checkpoint",
               "shutdown checkpoint failed", {{"error", st.to_string()}});
        }
      };
    }
    OsdServer server(*s.target, server_cfg);
    server.AttachEvents(events);
    // Live observability: per-window time series over the serving
    // metrics, plus the in-band STATS/SERIES admin plane. HEALTH and
    // EVENTS answer even with --telemetry off (dispatch does not depend
    // on AttachAdmin).
    if (telemetry_on) {
      server.AttachTelemetry(*s.telemetry);
      TrackServingDefaults(*s.telemetry, series, num_devices);
      server.AttachAdmin(s.telemetry.get(), &series);
    }
    if (tracing_on) server.AttachTracing(tracer);
    if (cluster_on) server.AttachCluster(*s.cluster);
    Status st = server.Listen();
    if (!st.ok()) {
      std::fprintf(stderr, "listen failed: %s\n", st.to_string().c_str());
      return 1;
    }
    if (!port_file.empty()) {
      Status wf =
          WriteFileAtomic(port_file, std::to_string(server.port()) + "\n");
      if (!wf.ok()) {
        std::fprintf(stderr, "port file: %s\n", wf.to_string().c_str());
        return 1;
      }
    }
    std::printf("reo_server listening on %s:%u (policy %s, %zu devices,"
                " %llu MiB budget)\n",
                server_cfg.bind_address.c_str(), server.port(),
                std::string(to_string(policy.mode)).c_str(), num_devices,
                static_cast<unsigned long long>(capacity_bytes >> 20));
    if (s.admit->enabled()) {
      std::printf("dram admission tier: %llu MiB, policy %s\n",
                  static_cast<unsigned long long>(admit_cfg.dram_bytes >> 20),
                  std::string(to_string(admit_cfg.policy)).c_str());
    }
    std::fflush(stdout);

    g_server = &server;
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);
    signal(SIGPIPE, SIG_IGN);

    server.Run();
    g_server = nullptr;

    const OsdServerStats& st2 = server.stats();
    std::printf("drained: %llu connections served, %llu requests,"
                " %llu bytes in / %llu out\n",
                static_cast<unsigned long long>(st2.accepted),
                static_cast<unsigned long long>(st2.requests),
                static_cast<unsigned long long>(st2.bytes_in),
                static_cast<unsigned long long>(st2.bytes_out));
    std::printf("wire errors: %llu frame, %llu crc, %llu decode\n",
                static_cast<unsigned long long>(st2.frame_errors),
                static_cast<unsigned long long>(st2.crc_errors),
                static_cast<unsigned long long>(st2.decode_errors));
  } else {
    // --- Sharded path: N loops behind one port. -----------------------
    ShardedServerConfig shard_cfg;
    shard_cfg.bind_address = server_cfg.bind_address;
    shard_cfg.port = server_cfg.port;
    shard_cfg.backlog = server_cfg.backlog;
    shard_cfg.max_connections = server_cfg.max_connections;
    shard_cfg.idle_timeout_ms = server_cfg.idle_timeout_ms;
    shard_cfg.drain_timeout_ms = server_cfg.drain_timeout_ms;
    shard_cfg.connection = server_cfg.connection;
    if (persist_cfg.enabled()) {
      // Phase-2 drain: every shard checkpoints its own journal on its
      // own loop thread once all in-flight work everywhere completed.
      shard_cfg.on_shard_drained = [&stacks, &events](size_t k) {
        Status st = stacks[k].persist->Checkpoint(0);
        if (!st.ok()) {
          Emit(&events, 0, EventSeverity::kError, "persist.checkpoint",
               "shutdown checkpoint failed",
               {{"error", st.to_string()}, {"shard", std::to_string(k)}});
        }
      };
    }
    std::vector<OsdTarget*> targets;
    std::vector<MetricRegistry*> registries;
    targets.reserve(num_shards);
    registries.reserve(num_shards);
    for (ShardStack& s : stacks) {
      targets.push_back(s.target.get());
      registries.push_back(s.telemetry.get());
    }
    ShardedServer server(targets, shard_cfg);
    server.AttachEvents(events);
    if (telemetry_on) {
      for (size_t k = 0; k < num_shards; ++k) {
        server.AttachShardTelemetry(k, *stacks[k].telemetry);
      }
      // One whole-process ring: every column sums the same-named metric
      // across shard registries, so reo_top's ratios stay correct.
      TrackServingDefaults(std::span<MetricRegistry* const>(registries),
                           series, num_devices);
      server.AttachAdmin(registries, &series);
    }
    if (cluster_on) {
      std::vector<const ClusterDirectory*> dirs;
      dirs.reserve(num_shards);
      for (ShardStack& s : stacks) dirs.push_back(s.cluster.get());
      server.AttachCluster(std::move(dirs));
    }
    Status st = server.Listen();
    if (!st.ok()) {
      std::fprintf(stderr, "listen failed: %s\n", st.to_string().c_str());
      return 1;
    }
    if (!port_file.empty()) {
      Status wf =
          WriteFileAtomic(port_file, std::to_string(server.port()) + "\n");
      if (!wf.ok()) {
        std::fprintf(stderr, "port file: %s\n", wf.to_string().c_str());
        return 1;
      }
    }
    std::printf("reo_server listening on %s:%u (%zu shards, policy %s,"
                " %zu devices/shard, %llu MiB budget)\n",
                shard_cfg.bind_address.c_str(), server.port(), num_shards,
                std::string(to_string(policy.mode)).c_str(), num_devices,
                static_cast<unsigned long long>(capacity_bytes >> 20));
    if (stacks[0].admit->enabled()) {
      std::printf("dram admission tier: %llu MiB, policy %s\n",
                  static_cast<unsigned long long>(admit_cfg.dram_bytes >> 20),
                  std::string(to_string(admit_cfg.policy)).c_str());
    }
    std::fflush(stdout);

    g_sharded = &server;
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);
    signal(SIGPIPE, SIG_IGN);

    server.Run();
    g_sharded = nullptr;

    ShardedServerStats st2 = server.stats();
    std::printf("drained: %llu connections served, %llu requests,"
                " %llu bytes in / %llu out\n",
                static_cast<unsigned long long>(st2.accepted),
                static_cast<unsigned long long>(st2.requests),
                static_cast<unsigned long long>(st2.bytes_in),
                static_cast<unsigned long long>(st2.bytes_out));
    std::printf("wire errors: %llu frame, %llu crc, %llu decode;"
                " cross-shard: %llu forwarded, %llu executed\n",
                static_cast<unsigned long long>(st2.frame_errors),
                static_cast<unsigned long long>(st2.crc_errors),
                static_cast<unsigned long long>(st2.decode_errors),
                static_cast<unsigned long long>(st2.forwarded),
                static_cast<unsigned long long>(st2.forward_executed));
  }

  if (!stats_out.empty()) {
    std::string json;
    if (num_shards == 1) {
      json = stacks[0].telemetry->Snapshot().ToJson();
    } else {
      std::vector<const MetricRegistry*> regs;
      regs.reserve(num_shards);
      for (ShardStack& s : stacks) regs.push_back(s.telemetry.get());
      json = MetricRegistry::Merged(regs).ToJson();
    }
    Status wf = WriteFileAtomic(stats_out, json);
    if (!wf.ok()) {
      std::fprintf(stderr, "stats write failed: %s\n", wf.to_string().c_str());
      return 1;
    }
    std::printf("telemetry snapshot -> %s\n", stats_out.c_str());
  }
  if (!events_out.empty()) {
    Status wf = WriteFileAtomic(events_out, events.ToText());
    if (!wf.ok()) {
      std::fprintf(stderr, "events write failed: %s\n", wf.to_string().c_str());
      return 1;
    }
    std::printf("event log -> %s\n", events_out.c_str());
  }
  return 0;
}
