// Failure drill: shoot devices down one by one during a live workload and
// watch Reo degrade gracefully while uniform protection falls off a cliff
// (the paper's §VI.C scenario), then insert a spare and watch prioritized
// recovery bring the cache back.
//
//   $ ./build/examples/failure_drill
#include <cstdio>

#include "sim/cache_simulator.h"
#include "workload/medisyn.h"

using namespace reo;

namespace {

MediSynConfig DrillWorkload() {
  MediSynConfig cfg;
  cfg.name = "drill";
  cfg.num_objects = 500;
  cfg.mean_object_bytes = 1 << 20;
  cfg.zipf_skew = 0.9;
  cfg.num_requests = 10000;
  cfg.seed = 99;
  return cfg;
}

void Drill(ProtectionMode mode, double reserve, const char* label) {
  auto trace = GenerateMediSyn(DrillWorkload());
  SimulationConfig cfg;
  cfg.name = label;
  cfg.policy = {.mode = mode, .reo_reserve_fraction = reserve};
  cfg.cache_fraction = 0.12;
  cfg.chunk_logical_bytes = 64 * 1024;
  cfg.scale_shift = 5;
  cfg.warmup_pass = true;  // measure from a warm cache, as the paper does
  cfg.failures = {{.at_request = 2500, .device = 0},
                  {.at_request = 5000, .device = 1},
                  {.at_request = 7500, .device = 2}};
  CacheSimulator sim(trace, cfg);
  auto report = sim.Run();

  std::printf("%s\n", label);
  for (const auto& w : report.windows) {
    std::printf("  %-12s hit=%5.1f%%  bw=%7.1f MB/s  lat=%6.2f ms\n",
                w.label.c_str(), w.HitRatio() * 100, w.BandwidthMBps(),
                w.AvgLatencyMs());
  }
  std::printf("  rebuilt %llu objects, %llu lost, dirty lost %llu\n",
              static_cast<unsigned long long>(report.cache.rebuilds),
              static_cast<unsigned long long>(report.cache.lost_evictions),
              static_cast<unsigned long long>(report.cache.dirty_lost));
}

}  // namespace

int main() {
  std::printf("failure_drill: 3 device failures at requests 2500/5000/7500\n\n");
  Drill(ProtectionMode::kUniform1, 0.0, "1-parity (uniform)");
  Drill(ProtectionMode::kUniform2, 0.0, "2-parity (uniform)");
  Drill(ProtectionMode::kReo, 0.20, "Reo-20%");
  Drill(ProtectionMode::kReo, 0.40, "Reo-40%");

  // Spare insertion: differentiated recovery rebuilds class 0 -> 3.
  auto trace = GenerateMediSyn(DrillWorkload());
  SimulationConfig cfg;
  cfg.name = "spare";
  cfg.policy = {.mode = ProtectionMode::kReo, .reo_reserve_fraction = 0.4};
  cfg.cache_fraction = 0.12;
  cfg.chunk_logical_bytes = 64 * 1024;
  cfg.scale_shift = 5;
  cfg.warmup_pass = true;
  cfg.failures = {{.at_request = 100, .device = 4}};
  cfg.spares = {{.at_request = 200, .device = 4}};
  CacheSimulator sim(trace, cfg);
  auto report = sim.Run();
  std::printf("\nspare drill: device 4 failed @100, spare inserted @200\n");
  std::printf("  rebuilt %llu objects; backlog at end: %zu\n",
              static_cast<unsigned long long>(report.cache.rebuilds),
              sim.cache().recovery_backlog());
  return 0;
}
