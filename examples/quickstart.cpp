// Quickstart: build a five-SSD Reo cache, serve a few objects, inspect the
// classification and space accounting.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "core/cache_manager.h"
#include "common/units.h"

using namespace reo;

int main() {
  // 1. Substrate: five simulated flash SSDs of 64 MiB each.
  FlashDeviceConfig dev;
  dev.capacity_bytes = 64ULL << 20;
  FlashArray array(5, dev);

  // 2. Stripe engine: 64 KiB chunks, full-size payloads (scale_shift 0).
  StripeManager stripes(array, {.chunk_logical_bytes = 64 * 1024, .scale_shift = 0});

  // 3. Reo policy: differentiated redundancy with a 20 % reserve.
  ReoDataPlane plane(stripes, RedundancyPolicy({.mode = ProtectionMode::kReo,
                                                .reo_reserve_fraction = 0.20}));

  // 4. OSD target + backend store + cache manager.
  OsdTarget target(plane);
  BackendStore backend(HddConfig{}, NetworkLinkConfig{});
  CacheManagerConfig cache_cfg;
  cache_cfg.hhot_refresh_interval = 50;
  CacheManager cache(target, plane, backend, cache_cfg);
  cache.Initialize(0);

  // Populate a small backend catalog.
  const int kObjects = 40;
  const uint64_t kSize = 1 << 20;  // 1 MiB objects
  for (int i = 0; i < kObjects; ++i) {
    ObjectId id{kFirstUserId, 0x20000u + static_cast<uint64_t>(i)};
    backend.RegisterObject(id, kSize, stripes.PhysicalSize(kSize));
  }

  // Serve a skewed read pattern: objects 0-3 are hot, the rest are cold.
  SimClock clock;
  for (int round = 0; round < 60; ++round) {
    for (int i = 0; i < kObjects; ++i) {
      bool hot = i < 4;
      if (!hot && round % 10 != 0) continue;
      ObjectId id{kFirstUserId, 0x20000u + static_cast<uint64_t>(i)};
      auto r = cache.Get(id, kSize, clock.now());
      clock.Advance(r.latency);
    }
  }

  const auto& st = cache.stats();
  auto space = stripes.Space();
  std::printf("Reo quickstart\n");
  std::printf("  requests        : %llu (%.1f%% hits)\n",
              static_cast<unsigned long long>(st.gets), st.HitRatio() * 100);
  std::printf("  resident objects: %zu (%s)\n", cache.resident_objects(),
              HumanBytes(cache.resident_bytes()).c_str());
  std::printf("  space efficiency: %.1f%% (user %s, redundancy %s)\n",
              space.SpaceEfficiency() * 100, HumanBytes(space.user_bytes).c_str(),
              HumanBytes(space.redundancy_bytes).c_str());
  std::printf("  hot threshold H : %g\n", cache.h_hot());

  // Inspect classification results: hot objects should be 2-parity.
  for (int i = 0; i < 6; ++i) {
    ObjectId id{kFirstUserId, 0x20000u + static_cast<uint64_t>(i)};
    if (!stripes.Contains(id)) continue;
    std::printf("  object %2d -> %s\n", i,
                std::string(to_string(*stripes.LevelOf(id))).c_str());
  }

  // A device failure: hot data keeps serving, cold data refetches.
  cache.OnDeviceFailure(2, clock.now());
  ObjectId hot{kFirstUserId, 0x20000};
  auto r = cache.Get(hot, kSize, clock.now());
  std::printf("  after failure   : hot object %s (degraded=%d)\n",
              r.hit ? "HIT" : "MISS", r.degraded ? 1 : 0);
  return 0;
}
