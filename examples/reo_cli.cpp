// reo_cli: command-line experiment driver.
//
// Runs one simulation with everything configurable from flags — workload
// (built-in preset or a trace file), protection policy, cache size, chunk
// size, failure/spare schedule — and prints the full report. Examples:
//
//   reo_cli --workload medium --policy reo --reserve 0.2 --cache 0.10
//   reo_cli --workload strong --policy 1-parity --fail 10000:0 --fail 20000:1
//   reo_cli --trace-file my.trace --policy full-repl
//   reo_cli --workload weak --save-trace weak.trace
//   reo_cli stats --stats-format csv       # full telemetry snapshot
//   reo_cli --fail 2000:0 --trace-out run.json --events-out run.events
//   reo_cli --data-dir /var/lib/reo ...    # durable simulation state
//   reo_cli recover-stats --data-dir /var/lib/reo   # inspect a crash image
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/file_util.h"
#include "persist/persistence.h"
#include "sim/cache_simulator.h"
#include "telemetry/metric_registry.h"
#include "trace/chrome_trace.h"
#include "workload/medisyn.h"
#include "workload/trace_io.h"

using namespace reo;

namespace {

void Usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --workload weak|medium|strong   built-in MediSyn preset (default medium)\n"
      "  --trace-file PATH               load a trace file instead\n"
      "  --save-trace PATH               write the workload to a trace file and exit\n"
      "  --write-ratio F                 mix writes into the preset (0..1)\n"
      "  --policy reo|0-parity|1-parity|2-parity|full-repl   (default reo)\n"
      "  --reserve F                     Reo redundancy reserve fraction (default 0.2)\n"
      "  --cache F                       cache size / dataset bytes (default 0.10)\n"
      "  --chunk-kb N                    chunk size in KiB (default 64)\n"
      "  --scale-shift N                 data-plane scale (default 7)\n"
      "  --devices N                     flash devices (default 5)\n"
      "  --fail REQ:DEV                  inject failure (repeatable)\n"
      "  --spare REQ:DEV                 insert spare (repeatable)\n"
      "  --fault-spec PATH               JSON fault-injection spec (see\n"
      "                                  src/fault/fault_spec.h for the format)\n"
      "  --scrub-every N                 full scrub pass every N requests\n"
      "  --dram-mb N                     DRAM admission tier budget in MiB\n"
      "                                  (default 0 = tier disabled)\n"
      "  --admission all|flashiness|credit   flash-admission policy (default all)\n"
      "  --flash-write-budget MBPS       write-credit budget in MiB/s (default 64)\n"
      "  --failslow-demote               demote devices flagged fail-slow\n"
      "  --warmup                        unmeasured warm-up pass first\n"
      "  --verify                        CRC-verify every hit\n"
      "  stats                           dump the end-of-run telemetry snapshot\n"
      "  --stats-format json|csv         snapshot format (default json)\n"
      "  --stats-out PATH                write the snapshot to a file (atomic)\n"
      "  --trace-out PATH                write a Chrome/Perfetto trace JSON\n"
      "  --events-out PATH               write the event log + recovery timeline\n"
      "  --trace-sample N                trace 1 in N requests (default 1)\n"
      "  --data-dir PATH                 durable cache state (data log + journal\n"
      "                                  + checkpoints) under PATH\n"
      "  recover-stats                   run crash recovery on --data-dir and\n"
      "                                  print the replay report, then exit\n"
      "  --wire                          route OSD commands over the wire transport\n"
      "  --link-gbps F                   modeled link bandwidth in Gbit/s (default 10)\n"
      "  --link-rtt-us F                 modeled link round-trip in microseconds (default 100)\n",
      argv0);
}

bool ParseEvent(const char* arg, uint64_t* req, uint32_t* dev) {
  char* end = nullptr;
  *req = std::strtoull(arg, &end, 10);
  if (end == nullptr || *end != ':') return false;
  *dev = static_cast<uint32_t>(std::strtoul(end + 1, &end, 10));
  return end != nullptr && *end == '\0';
}

/// `recover-stats`: runs crash recovery against a data dir and reports what
/// replay found — straight from the persist.* metrics the manager publishes.
/// Recovery is idempotent but not read-only (it truncates torn tails and
/// reclaims dead segments), so point it at a stopped server's directory.
int RecoverStats(const PersistenceConfig& cfg) {
  auto opened = PersistenceManager::Open(cfg);
  if (!opened.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 opened.status().to_string().c_str());
    return 1;
  }
  PersistenceManager& p = **opened;
  MetricRegistry registry;
  p.AttachTelemetry(registry);
  MetricSnapshot snap = registry.Snapshot();
  auto gauge = [&snap](const char* name) -> double {
    const MetricSnapshot::Entry* e = snap.Find(name);
    return e != nullptr ? e->value : 0.0;
  };
  const ReplayStats& rs = p.replay_stats();
  std::printf("recovery of %s:\n", cfg.data_dir.c_str());
  std::printf("  checkpoint: %s (%llu objects)\n",
              rs.checkpoint_loaded ? "loaded" : "none",
              static_cast<unsigned long long>(rs.checkpoint_objects));
  std::printf("  replay: %.0f journal records in %.0f us\n",
              gauge("persist.replay.records"),
              gauge("persist.replay.duration_us"));
  std::printf("  live objects per class: 0=%.0f 1=%.0f 2=%.0f 3=%.0f\n",
              gauge("persist.replay.class0_objects"),
              gauge("persist.replay.class1_objects"),
              gauge("persist.replay.class2_objects"),
              gauge("persist.replay.class3_objects"));
  std::printf("  torn-tail truncations: %.0f\n",
              gauge("persist.replay.torn_tail_truncations"));
  std::printf("  invalid data locations dropped: %.0f\n",
              gauge("persist.replay.invalid_locations"));
  std::printf("  dead segments reclaimed: %.0f\n",
              gauge("persist.replay.gc_segments"));
  std::printf("  live: %llu objects, %llu bytes; recovered H_hot %.3f\n",
              static_cast<unsigned long long>(p.live_objects()),
              static_cast<unsigned long long>(p.live_bytes()),
              p.recovered_h_hot());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string workload = "medium";
  std::string trace_file, save_trace;
  bool recover_stats = false;
  bool dump_stats = false;
  std::string stats_format = "json";
  std::string stats_out, trace_out, events_out;
  double write_ratio = -1.0;
  SimulationConfig cfg;
  cfg.policy = {.mode = ProtectionMode::kReo, .reo_reserve_fraction = 0.2};
  cfg.cache_fraction = 0.10;
  cfg.chunk_logical_bytes = 64 * 1024;
  cfg.scale_shift = 7;

  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--workload")) {
      workload = next();
    } else if (!std::strcmp(argv[i], "--trace-file")) {
      trace_file = next();
    } else if (!std::strcmp(argv[i], "--save-trace")) {
      save_trace = next();
    } else if (!std::strcmp(argv[i], "--write-ratio")) {
      write_ratio = std::atof(next());
    } else if (!std::strcmp(argv[i], "--policy")) {
      std::string p = next();
      if (p == "reo") cfg.policy.mode = ProtectionMode::kReo;
      else if (p == "0-parity") cfg.policy.mode = ProtectionMode::kUniform0;
      else if (p == "1-parity") cfg.policy.mode = ProtectionMode::kUniform1;
      else if (p == "2-parity") cfg.policy.mode = ProtectionMode::kUniform2;
      else if (p == "full-repl") cfg.policy.mode = ProtectionMode::kFullReplication;
      else {
        std::fprintf(stderr, "unknown policy %s\n", p.c_str());
        return 2;
      }
    } else if (!std::strcmp(argv[i], "--reserve")) {
      cfg.policy.reo_reserve_fraction = std::atof(next());
    } else if (!std::strcmp(argv[i], "--cache")) {
      cfg.cache_fraction = std::atof(next());
    } else if (!std::strcmp(argv[i], "--chunk-kb")) {
      cfg.chunk_logical_bytes = std::strtoull(next(), nullptr, 10) * 1024;
    } else if (!std::strcmp(argv[i], "--scale-shift")) {
      cfg.scale_shift = static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (!std::strcmp(argv[i], "--devices")) {
      cfg.num_devices = std::strtoull(next(), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--fail")) {
      FailureEvent ev;
      uint64_t req;
      uint32_t dev;
      if (!ParseEvent(next(), &req, &dev)) {
        std::fprintf(stderr, "--fail expects REQ:DEV\n");
        return 2;
      }
      ev.at_request = req;
      ev.device = dev;
      cfg.failures.push_back(ev);
    } else if (!std::strcmp(argv[i], "--spare")) {
      SpareEvent ev;
      uint64_t req;
      uint32_t dev;
      if (!ParseEvent(next(), &req, &dev)) {
        std::fprintf(stderr, "--spare expects REQ:DEV\n");
        return 2;
      }
      ev.at_request = req;
      ev.device = dev;
      cfg.spares.push_back(ev);
    } else if (!std::strcmp(argv[i], "--fault-spec")) {
      auto spec = LoadFaultSpecFile(next());
      if (!spec.ok()) {
        std::fprintf(stderr, "bad fault spec: %s\n",
                     spec.status().to_string().c_str());
        return 2;
      }
      cfg.faults = std::move(*spec);
    } else if (!std::strcmp(argv[i], "--scrub-every")) {
      cfg.scrub_interval_requests = std::strtoull(next(), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--dram-mb")) {
      cfg.admission.dram_bytes = std::strtoull(next(), nullptr, 10) * kMiB;
    } else if (!std::strcmp(argv[i], "--admission")) {
      const char* p = next();
      if (!ParseAdmissionPolicy(p, &cfg.admission.policy)) {
        std::fprintf(stderr, "unknown admission policy %s\n", p);
        return 2;
      }
    } else if (!std::strcmp(argv[i], "--flash-write-budget")) {
      cfg.admission.flash_write_budget_bps =
          std::strtoull(next(), nullptr, 10) * kMiB;
    } else if (!std::strcmp(argv[i], "--failslow-demote")) {
      cfg.failslow_demote = true;
    } else if (!std::strcmp(argv[i], "recover-stats")) {
      recover_stats = true;
    } else if (!std::strcmp(argv[i], "--data-dir")) {
      cfg.persistence.data_dir = next();
    } else if (!std::strcmp(argv[i], "stats") || !std::strcmp(argv[i], "--stats")) {
      dump_stats = true;
    } else if (!std::strcmp(argv[i], "--stats-format")) {
      stats_format = next();
      if (stats_format != "json" && stats_format != "csv") {
        std::fprintf(stderr, "--stats-format expects json or csv\n");
        return 2;
      }
    } else if (!std::strcmp(argv[i], "--stats-out")) {
      stats_out = next();
      dump_stats = true;
    } else if (!std::strcmp(argv[i], "--trace-out")) {
      trace_out = next();
      cfg.enable_tracing = true;
    } else if (!std::strcmp(argv[i], "--events-out")) {
      events_out = next();
      cfg.enable_tracing = true;
    } else if (!std::strcmp(argv[i], "--trace-sample")) {
      cfg.tracer.sample_every = std::strtoull(next(), nullptr, 10);
      if (cfg.tracer.sample_every == 0) cfg.tracer.sample_every = 1;
    } else if (!std::strcmp(argv[i], "--wire")) {
      cfg.wire_transport = true;
    } else if (!std::strcmp(argv[i], "--link-gbps")) {
      cfg.net.gbps = std::atof(next());
      if (cfg.net.gbps <= 0) {
        std::fprintf(stderr, "--link-gbps expects a positive bandwidth\n");
        return 2;
      }
    } else if (!std::strcmp(argv[i], "--link-rtt-us")) {
      cfg.net.rtt_ns = static_cast<SimTime>(std::atof(next()) * kNsPerUs);
    } else if (!std::strcmp(argv[i], "--warmup")) {
      cfg.warmup_pass = true;
    } else if (!std::strcmp(argv[i], "--verify")) {
      cfg.verify_hits = true;
    } else if (!std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h")) {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      Usage(argv[0]);
      return 2;
    }
  }

  if (recover_stats) {
    if (!cfg.persistence.enabled()) {
      std::fprintf(stderr, "recover-stats requires --data-dir\n");
      return 2;
    }
    return RecoverStats(cfg.persistence);
  }

  // Build the workload.
  Trace trace;
  if (!trace_file.empty()) {
    auto loaded = LoadTraceFile(trace_file);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", trace_file.c_str(),
                   loaded.status().to_string().c_str());
      return 1;
    }
    trace = std::move(loaded).value();
  } else {
    MediSynConfig wl;
    if (workload == "weak") wl = WeakLocalityConfig();
    else if (workload == "medium") wl = MediumLocalityConfig();
    else if (workload == "strong") wl = StrongLocalityConfig();
    else {
      std::fprintf(stderr, "unknown workload %s\n", workload.c_str());
      return 2;
    }
    if (write_ratio >= 0.0) wl.write_ratio = write_ratio;
    trace = GenerateMediSyn(wl);
  }

  if (!save_trace.empty()) {
    Status st = SaveTraceFile(trace, save_trace);
    if (!st.ok()) {
      std::fprintf(stderr, "save failed: %s\n", st.to_string().c_str());
      return 1;
    }
    std::printf("wrote %zu requests / %zu objects to %s\n",
                trace.requests.size(), trace.catalog.count(),
                save_trace.c_str());
    return 0;
  }

  cfg.name = std::string(to_string(cfg.policy.mode));
  CacheSimulator sim(trace, cfg);
  auto report = sim.Run();

  std::printf("workload: %s (%zu requests, %zu objects, %.2f GB dataset)\n",
              trace.name.c_str(), trace.requests.size(), trace.catalog.count(),
              static_cast<double>(trace.catalog.TotalBytes()) / 1e9);
  std::printf("%s\n", FormatReportRow(report).c_str());
  if (report.windows.size() > 1) {
    for (const auto& w : report.windows) {
      std::printf("  %-16s hit=%5.1f%%  bw=%7.1f MB/s  lat=%6.2f ms"
                  "  p99=%6.2f ms  (%llu reqs)\n",
                  w.label.c_str(), w.HitRatio() * 100, w.BandwidthMBps(),
                  w.AvgLatencyMs(), w.P99LatencyMs(),
                  static_cast<unsigned long long>(w.requests));
    }
  }
  std::printf("cache: %llu hits / %llu misses, %llu evictions, %llu rebuilds,"
              " %llu flushes, dirty lost %llu\n",
              static_cast<unsigned long long>(report.cache.hits),
              static_cast<unsigned long long>(report.cache.misses),
              static_cast<unsigned long long>(report.cache.evictions),
              static_cast<unsigned long long>(report.cache.rebuilds),
              static_cast<unsigned long long>(report.cache.flushes),
              static_cast<unsigned long long>(report.cache.dirty_lost));
  std::printf("space: eff=%.1f%% (user %.1f MB + redundancy %.1f MB), wear %.4f%%\n",
              report.space.SpaceEfficiency() * 100,
              static_cast<double>(report.space.user_bytes) / 1e6,
              static_cast<double>(report.space.redundancy_bytes) / 1e6,
              report.max_wear * 100);
  if (cfg.admission.dram_bytes > 0) {
    auto counter = [&report](const char* name) -> double {
      const MetricSnapshot::Entry* e = report.telemetry.Find(name);
      return e != nullptr ? e->value : 0.0;
    };
    double dram_total = counter("dram.hits") + counter("dram.misses");
    std::printf("admit (%s): staged %.0f, graduated %.0f, dropped %.0f,"
                " write-through %.0f, bypass %.0f; dram hit %.1f%%\n",
                std::string(to_string(cfg.admission.policy)).c_str(),
                counter("admit.staged"), counter("admit.graduated"),
                counter("admit.dropped"), counter("admit.write_through"),
                counter("admit.bypass"),
                dram_total > 0 ? counter("dram.hits") / dram_total * 100 : 0.0);
  }
  if (!cfg.faults.empty()) {
    auto counter = [&report](const char* name) -> double {
      const MetricSnapshot::Entry* e = report.telemetry.Find(name);
      return e != nullptr ? e->value : 0.0;
    };
    std::printf("faults: %.0f injected; crc detected %.0f, repaired %.0f"
                " (unrepaired %.0f)\n",
                counter("fault.injected"), counter("fault.crc_detected"),
                counter("fault.crc_repairs") + counter("scrub.chunks_repaired"),
                counter("fault.crc_unrepaired"));
    std::printf("        retries %.0f (exhausted %.0f), backend retries %.0f;"
                " scrub passes %.0f; failslow flagged %.0f, demoted %.0f\n",
                counter("retry.attempts"), counter("retry.exhausted"),
                counter("retry.backend.attempts"), counter("scrub.passes"),
                counter("failslow.flagged"), counter("failslow.demotions"));
  }
  if (dump_stats) {
    std::string snapshot = stats_format == "csv" ? report.telemetry.ToCsv()
                                                 : report.telemetry.ToJson();
    if (!stats_out.empty()) {
      Status st = WriteFileAtomic(stats_out, snapshot);
      if (!st.ok()) {
        std::fprintf(stderr, "stats write failed: %s\n", st.to_string().c_str());
        return 1;
      }
      std::printf("telemetry snapshot -> %s\n", stats_out.c_str());
    } else {
      std::printf("telemetry:\n%s\n", snapshot.c_str());
    }
  }
  if (cfg.enable_tracing) {
    std::printf("trace: %llu/%llu requests sampled, %llu spans (%llu dropped),"
                " %llu events\n",
                static_cast<unsigned long long>(report.trace.traces_sampled),
                static_cast<unsigned long long>(report.trace.requests_seen),
                static_cast<unsigned long long>(report.trace.spans_recorded),
                static_cast<unsigned long long>(report.trace.spans_dropped),
                static_cast<unsigned long long>(report.trace.events_logged));
    if (!trace_out.empty()) {
      Status st = WriteFileAtomic(trace_out, ChromeTraceJson(sim.tracer()));
      if (!st.ok()) {
        std::fprintf(stderr, "trace write failed: %s\n", st.to_string().c_str());
        return 1;
      }
      std::printf("chrome trace -> %s (load in ui.perfetto.dev)\n",
                  trace_out.c_str());
    }
    if (!events_out.empty()) {
      std::string text = sim.tracer().events().ToText();
      text += "\n";
      text += TraceReportText(sim.tracer());
      Status st = WriteFileAtomic(events_out, text);
      if (!st.ok()) {
        std::fprintf(stderr, "events write failed: %s\n", st.to_string().c_str());
        return 1;
      }
      std::printf("event log -> %s\n", events_out.c_str());
    }
  }
  return 0;
}
