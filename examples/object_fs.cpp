// Object filesystem demo: the paper's Fig 1(b) stack — applications above
// an exofs-like filesystem whose files, directories, superblock all live
// as user objects on the differentiated-redundancy OSD.
//
//   $ ./build/examples/object_fs
#include <cstdio>

#include "core/data_plane.h"
#include "osd/exofs.h"

using namespace reo;

int main() {
  // Substrate: 5 devices, Reo policy, OSD target + initiator session.
  FlashDeviceConfig dev;
  dev.capacity_bytes = 64ULL << 20;
  FlashArray array(5, dev);
  StripeManager stripes(array, {.chunk_logical_bytes = 16 * 1024, .scale_shift = 0});
  ReoDataPlane plane(stripes, RedundancyPolicy({.mode = ProtectionMode::kReo,
                                                .reo_reserve_fraction = 0.3}));
  OsdTarget target(plane);
  OsdInitiator initiator(target);
  ExofsClient fs(initiator, [&](uint64_t l) { return stripes.PhysicalSize(l); });

  if (!fs.MkFs(array.total_capacity_bytes(), 0).ok()) {
    std::printf("mkfs failed\n");
    return 1;
  }
  // Protect the filesystem metadata like Reo protects Class 0.
  for (ObjectId id : {kSuperBlockObject, kRootDirectoryObject}) {
    (void)initiator.SetClassId(id, 0, 0);
  }

  std::printf("object_fs: exofs over a Reo OSD\n");
  (void)fs.Mkdir("/movies", 0);
  (void)fs.Mkdir("/movies/drafts", 0);
  std::string body(100'000, 'm');
  (void)fs.WriteFile("/movies/pilot.mp4",
                     {reinterpret_cast<const uint8_t*>(body.data()), body.size()},
                     body.size(), 0);

  auto listing = fs.ReadDir("/movies", 0);
  if (listing.ok()) {
    std::printf("  /movies:\n");
    for (const auto& e : *listing) {
      std::printf("    %c %-12s oid=0x%llx size=%llu\n",
                  e.is_directory ? 'd' : '-', e.name.c_str(),
                  static_cast<unsigned long long>(e.object.oid),
                  static_cast<unsigned long long>(e.size));
    }
  }

  // A device dies; the replicated metadata keeps the namespace alive.
  (void)array.FailDevice(1);
  (void)stripes.OnDeviceFailure(1);
  ExofsClient remount(initiator, [&](uint64_t l) { return stripes.PhysicalSize(l); });
  bool ok = remount.Mount(0).ok() && remount.ReadDir("/movies", 0).ok();
  std::printf("  after device failure: namespace %s\n",
              ok ? "still mountable (Class-0 replication)" : "LOST");

  auto file = remount.ReadFile("/movies/pilot.mp4", 0);
  std::printf("  file data: %s\n",
              file.ok() ? "readable" : "lost (was cold/unprotected)");
  return 0;
}
